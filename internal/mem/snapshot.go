package mem

// Engine snapshots: a compact, checksummed binary serialization of one
// analyzed Database — schema, rows (column-major), per-column statistics
// and the keyword inverted index — so a serving process can cold-start by
// decoding a file instead of re-running a generator, re-coercing every
// cell and re-analyzing. The format is versioned (formatVersion) and the
// payload is guarded by a CRC; every decode failure, from a bad magic to
// a truncated posting list, fails closed with ErrSnapshotCorrupt.
//
// The data version (Database.Version) is stored verbatim: filter-outcome
// caches key on it, so a snapshot round trip keeps cached session state
// addressable exactly as if the process had never restarted.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"prism/internal/fault"
	"prism/internal/schema"
	"prism/internal/value"
)

// snapshotMagic opens every snapshot file. The trailing byte is the
// format version; bumping snapshotFormatVersion invalidates old files
// explicitly rather than misreading them.
var snapshotMagic = [8]byte{'P', 'R', 'S', 'N', 'A', 'P', '0', '1'}

const snapshotFormatVersion = 1

var (
	// ErrSnapshotCorrupt reports a snapshot that failed structural
	// validation: wrong magic, truncated payload, checksum mismatch, or
	// an impossible encoding. Loads fail closed — no partially-decoded
	// database is ever returned.
	ErrSnapshotCorrupt = errors.New("mem: snapshot corrupt")
	// ErrSnapshotVersion reports a snapshot written by an incompatible
	// format version of this package.
	ErrSnapshotVersion = errors.New("mem: unsupported snapshot format version")
)

// WriteSnapshot serializes the database to w. The database is analyzed
// first (a no-op when already current) so the snapshot always carries
// statistics and the inverted index: a ReadSnapshot of the result is
// query-ready without further preprocessing.
func (db *Database) WriteSnapshot(w io.Writer) error {
	if err := faultSnapshotEncode.Hit(); err != nil {
		return fmt.Errorf("mem: writing snapshot: %w", err)
	}
	w = faultSnapshotEncode.Writer(w)
	db.Analyze()
	db.mu.RLock()
	defer db.mu.RUnlock()

	var body bytes.Buffer
	enc := snapshotEncoder{w: &body}
	enc.string(db.Name)
	enc.uvarint(db.version)
	enc.schema(db.sch)
	for _, t := range db.sch.Tables() {
		rel := db.relations[strings.ToLower(t.Name)]
		enc.uvarint(uint64(len(rel.Rows)))
		// Column-major with a per-column encoding tag: text columns are
		// dictionary-encoded (each distinct string stored once, rows as
		// codes), everything else is a plain kind-tagged value stream.
		// Cold-start decode speed is the point — a dictionary column
		// costs one string allocation per distinct value instead of one
		// per row.
		for ci := range t.Columns {
			enc.column(t.Columns[ci].Type, rel.Rows, ci)
		}
	}
	enc.analyzedState(db)

	header := make([]byte, 0, len(snapshotMagic)+2+12)
	header = append(header, snapshotMagic[:]...)
	header = binary.LittleEndian.AppendUint64(header, uint64(body.Len()))
	header = binary.LittleEndian.AppendUint32(header, crc32.ChecksumIEEE(body.Bytes()))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("mem: writing snapshot header: %w", err)
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("mem: writing snapshot body: %w", err)
	}
	return nil
}

// ReadSnapshot decodes a snapshot written by WriteSnapshot. The returned
// database is analyzed (statistics and indexes restored, not recomputed)
// and carries the original data version.
func ReadSnapshot(r io.Reader) (*Database, error) {
	if err := faultSnapshotDecode.Hit(); err != nil {
		if errors.Is(err, fault.ErrInjected) {
			// Injected decode failures present as corruption so callers
			// exercise their real degraded path.
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		return nil, fmt.Errorf("mem: reading snapshot: %w", err)
	}
	header := make([]byte, len(snapshotMagic)+12)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrSnapshotCorrupt, err)
	}
	if !bytes.Equal(header[:len(snapshotMagic)-2], snapshotMagic[:len(snapshotMagic)-2]) {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	if !bytes.Equal(header[:len(snapshotMagic)], snapshotMagic[:]) {
		return nil, fmt.Errorf("%w: snapshot format %q, this build reads %q",
			ErrSnapshotVersion, header[len(snapshotMagic)-2:len(snapshotMagic)], snapshotMagic[len(snapshotMagic)-2:])
	}
	bodyLen := binary.LittleEndian.Uint64(header[len(snapshotMagic):])
	wantCRC := binary.LittleEndian.Uint32(header[len(snapshotMagic)+8:])
	const maxSnapshotBytes = 1 << 36 // 64 GiB: reject absurd lengths before allocating
	if bodyLen > maxSnapshotBytes {
		return nil, fmt.Errorf("%w: implausible body length %d", ErrSnapshotCorrupt, bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("%w: truncated body: %v", ErrSnapshotCorrupt, err)
	}
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}

	dec := &snapshotDecoder{buf: body}
	db, err := dec.database()
	if err != nil {
		return nil, err
	}
	if dec.pos != len(dec.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(dec.buf)-dec.pos)
	}
	return db, nil
}

// ---------------------------------------------------------------------
// Encoding

type snapshotEncoder struct {
	w *bytes.Buffer
}

func (e snapshotEncoder) uvarint(v uint64) { e.w.Write(binary.AppendUvarint(nil, v)) }
func (e snapshotEncoder) varint(v int64)   { e.w.Write(binary.AppendVarint(nil, v)) }

func (e snapshotEncoder) string(s string) {
	e.uvarint(uint64(len(s)))
	e.w.WriteString(s)
}

func (e snapshotEncoder) value(v value.Value) {
	e.w.WriteByte(byte(v.Kind()))
	switch v.Kind() {
	case value.Null:
	case value.Int:
		e.varint(v.Int())
	case value.Decimal:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.Decimal()))
		e.w.Write(b[:])
	case value.Text:
		e.string(v.Text())
	case value.Date, value.Time:
		e.varint(v.TimeValue().Unix())
	}
}

// Column encoding tags. The trailing-garbage and bit-flip tests cover
// both branches via the fixture's mixed schema.
const (
	colPlain    = 0 // kind-tagged value per row
	colDictText = 1 // string dictionary, then one code per row (0 = NULL)
)

// column writes one table column. Text columns get the dictionary
// encoding; any other declared type — and, defensively, a text column
// holding a mistyped non-null cell — gets the plain stream.
func (e snapshotEncoder) column(declared value.Kind, rows []value.Tuple, ci int) {
	plain := declared != value.Text
	for _, row := range rows {
		if v := row[ci]; !v.IsNull() && v.Kind() != declared {
			plain = true
			break
		}
	}
	if plain {
		e.w.WriteByte(colPlain)
		for _, row := range rows {
			e.value(row[ci])
		}
		return
	}
	e.w.WriteByte(colDictText)
	codes := make(map[string]uint64) // string -> code; 0 is NULL, so codes start at 1
	dict := make([]string, 0, 16)    // first-seen order keeps the bytes deterministic
	rowCodes := make([]uint64, len(rows))
	for ri, row := range rows {
		v := row[ci]
		if v.IsNull() {
			continue
		}
		s := v.Text()
		code, ok := codes[s]
		if !ok {
			dict = append(dict, s)
			code = uint64(len(dict))
			codes[s] = code
		}
		rowCodes[ri] = code
	}
	e.uvarint(uint64(len(dict)))
	for _, s := range dict {
		e.string(s)
	}
	for _, code := range rowCodes {
		e.uvarint(code)
	}
}

func (e snapshotEncoder) schema(s *schema.Schema) {
	tables := s.Tables()
	e.uvarint(uint64(len(tables)))
	for _, t := range tables {
		e.string(t.Name)
		e.string(t.Comment)
		e.uvarint(uint64(len(t.Columns)))
		for _, c := range t.Columns {
			e.string(c.Name)
			e.w.WriteByte(byte(c.Type))
			e.string(c.Comment)
		}
		e.uvarint(uint64(len(t.PrimaryKey)))
		for _, pk := range t.PrimaryKey {
			e.string(pk)
		}
	}
	fks := s.ForeignKeys()
	e.uvarint(uint64(len(fks)))
	for _, fk := range fks {
		e.string(fk.From.Table)
		e.string(fk.From.Column)
		e.string(fk.To.Table)
		e.string(fk.To.Column)
	}
}

// analyzedState writes the preprocessing products: per-column statistics
// and the keyword inverted index. Postings are encoded against a column
// ordinal table (schema declaration order) with delta-compressed row
// ids; keywords are sorted so identical databases produce identical
// bytes. The per-column keyword sets are not stored — they are exactly
// the posting refs per keyword and are rebuilt during decode.
func (e snapshotEncoder) analyzedState(db *Database) {
	ordinals := columnOrdinals(db.sch)
	e.uvarint(uint64(len(db.stats)))
	statKeys := make([]string, 0, len(db.stats))
	for k := range db.stats {
		statKeys = append(statKeys, k)
	}
	sort.Strings(statKeys)
	for _, k := range statKeys {
		st := db.stats[k]
		e.uvarint(uint64(ordinals[statsKey(st.Ref)]))
		e.w.WriteByte(byte(st.Type))
		e.value(st.Min)
		e.value(st.Max)
		e.uvarint(uint64(st.MaxLength))
		e.uvarint(uint64(st.RowCount))
		e.uvarint(uint64(st.NullCount))
		e.uvarint(uint64(st.Distinct))
	}

	e.uvarint(uint64(len(db.inverted)))
	keywords := make([]string, 0, len(db.inverted))
	for kw := range db.inverted {
		keywords = append(keywords, kw)
	}
	sort.Strings(keywords)
	for _, kw := range keywords {
		postings := db.inverted[kw]
		e.string(kw)
		e.uvarint(uint64(len(postings)))
		prevRow := 0
		prevCol := 0
		for _, p := range postings {
			col := ordinals[statsKey(p.Ref)]
			e.varint(int64(col - prevCol))
			e.varint(int64(p.Row - prevRow))
			prevCol, prevRow = col, p.Row
		}
	}
}

// columnOrdinals numbers every column in schema declaration order; the
// snapshot refers to columns by these ordinals instead of repeating
// table/column strings per posting.
func columnOrdinals(s *schema.Schema) map[string]int {
	out := make(map[string]int)
	n := 0
	for _, t := range s.Tables() {
		for _, c := range t.Columns {
			out[statsKey(schema.ColumnRef{Table: t.Name, Column: c.Name})] = n
			n++
		}
	}
	return out
}

// columnRefs is the inverse of columnOrdinals: ordinal -> canonical ref.
func columnRefs(s *schema.Schema) []schema.ColumnRef {
	var out []schema.ColumnRef
	for _, t := range s.Tables() {
		for _, c := range t.Columns {
			out = append(out, schema.ColumnRef{Table: t.Name, Column: c.Name})
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Decoding

type snapshotDecoder struct {
	buf []byte
	pos int
}

func (d *snapshotDecoder) fail(format string, args ...any) error {
	return fmt.Errorf("%w: %s at offset %d", ErrSnapshotCorrupt, fmt.Sprintf(format, args...), d.pos)
}

func (d *snapshotDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.fail("bad uvarint")
	}
	d.pos += n
	return v, nil
}

func (d *snapshotDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.fail("bad varint")
	}
	d.pos += n
	return v, nil
}

// count decodes a collection length and bounds it against the bytes that
// remain: every element costs at least one byte, so any length exceeding
// the remaining payload is corruption, caught before allocation.
func (d *snapshotDecoder) count() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.buf)-d.pos) {
		return 0, d.fail("count %d exceeds remaining payload", v)
	}
	return int(v), nil
}

func (d *snapshotDecoder) string() (string, error) {
	n, err := d.count()
	if err != nil {
		return "", err
	}
	s := string(d.buf[d.pos : d.pos+n])
	d.pos += n
	return s, nil
}

func (d *snapshotDecoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, d.fail("unexpected end of payload")
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *snapshotDecoder) value() (value.Value, error) {
	kind, err := d.byte()
	if err != nil {
		return value.NullValue, err
	}
	switch value.Kind(kind) {
	case value.Null:
		return value.NullValue, nil
	case value.Int:
		i, err := d.varint()
		if err != nil {
			return value.NullValue, err
		}
		return value.NewInt(i), nil
	case value.Decimal:
		if d.pos+8 > len(d.buf) {
			return value.NullValue, d.fail("truncated decimal")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.pos:]))
		d.pos += 8
		return value.NewDecimal(f), nil
	case value.Text:
		s, err := d.string()
		if err != nil {
			return value.NullValue, err
		}
		return value.NewText(s), nil
	case value.Date:
		secs, err := d.varint()
		if err != nil {
			return value.NullValue, err
		}
		return value.NewDate(time.Unix(secs, 0).UTC()), nil
	case value.Time:
		secs, err := d.varint()
		if err != nil {
			return value.NullValue, err
		}
		return value.NewTime(time.Unix(secs, 0).UTC()), nil
	default:
		return value.NullValue, d.fail("unknown value kind %d", kind)
	}
}

func (d *snapshotDecoder) schema() (*schema.Schema, error) {
	numTables, err := d.count()
	if err != nil {
		return nil, err
	}
	s := schema.New()
	for i := 0; i < numTables; i++ {
		name, err := d.string()
		if err != nil {
			return nil, err
		}
		comment, err := d.string()
		if err != nil {
			return nil, err
		}
		numCols, err := d.count()
		if err != nil {
			return nil, err
		}
		cols := make([]schema.Column, numCols)
		for ci := range cols {
			if cols[ci].Name, err = d.string(); err != nil {
				return nil, err
			}
			kind, err := d.byte()
			if err != nil {
				return nil, err
			}
			cols[ci].Type = value.Kind(kind)
			if cols[ci].Comment, err = d.string(); err != nil {
				return nil, err
			}
		}
		t, err := schema.NewTable(name, cols...)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		t.Comment = comment
		numPK, err := d.count()
		if err != nil {
			return nil, err
		}
		for p := 0; p < numPK; p++ {
			pk, err := d.string()
			if err != nil {
				return nil, err
			}
			t.PrimaryKey = append(t.PrimaryKey, pk)
		}
		if err := s.AddTable(t); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
	}
	numFKs, err := d.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < numFKs; i++ {
		var fk schema.ForeignKey
		if fk.From.Table, err = d.string(); err != nil {
			return nil, err
		}
		if fk.From.Column, err = d.string(); err != nil {
			return nil, err
		}
		if fk.To.Table, err = d.string(); err != nil {
			return nil, err
		}
		if fk.To.Column, err = d.string(); err != nil {
			return nil, err
		}
		if err := s.AddForeignKey(fk); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
	}
	return s, nil
}

func (d *snapshotDecoder) database() (*Database, error) {
	name, err := d.string()
	if err != nil {
		return nil, err
	}
	version, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	sch, err := d.schema()
	if err != nil {
		return nil, err
	}
	db := NewDatabase(name, sch)
	db.version = version

	for _, t := range sch.Tables() {
		numRows, err := d.count()
		if err != nil {
			return nil, err
		}
		rows := make([]value.Tuple, numRows)
		cells := make(value.Tuple, numRows*len(t.Columns))
		for ri := range rows {
			rows[ri] = cells[ri*len(t.Columns) : (ri+1)*len(t.Columns)]
		}
		for ci := range t.Columns {
			if err := d.column(t, ci, rows); err != nil {
				return nil, err
			}
		}
		db.relations[strings.ToLower(t.Name)].Rows = rows
	}

	if err := d.analyzedState(db); err != nil {
		return nil, err
	}
	return db, nil
}

// column decodes one table column into rows[*][ci] according to its
// encoding tag.
func (d *snapshotDecoder) column(t *schema.Table, ci int, rows []value.Tuple) error {
	declared := t.Columns[ci].Type
	tag, err := d.byte()
	if err != nil {
		return err
	}
	switch tag {
	case colPlain:
		for ri := range rows {
			v, err := d.value()
			if err != nil {
				return err
			}
			// Cells were coerced to the declared type before the
			// snapshot was written; a mismatch means the payload was
			// tampered with in a CRC-preserving way or written by a
			// buggy encoder. Either way: fail closed.
			if !v.IsNull() && v.Kind() != declared {
				return d.fail("table %s column %s: %s cell in a %s column",
					t.Name, t.Columns[ci].Name, v.Kind(), declared)
			}
			rows[ri][ci] = v
		}
	case colDictText:
		if declared != value.Text {
			return d.fail("table %s column %s: dictionary encoding on a %s column",
				t.Name, t.Columns[ci].Name, declared)
		}
		numDistinct, err := d.count()
		if err != nil {
			return err
		}
		dict := make([]value.Value, numDistinct+1) // dict[0] stays NULL
		for i := 1; i <= numDistinct; i++ {
			s, err := d.string()
			if err != nil {
				return err
			}
			dict[i] = value.NewText(s)
		}
		for ri := range rows {
			code, err := d.uvarint()
			if err != nil {
				return err
			}
			if code > uint64(numDistinct) {
				return d.fail("table %s column %s: dictionary code %d out of range",
					t.Name, t.Columns[ci].Name, code)
			}
			rows[ri][ci] = dict[code]
		}
	default:
		return d.fail("table %s column %s: unknown column encoding %d",
			t.Name, t.Columns[ci].Name, tag)
	}
	return nil
}

func (d *snapshotDecoder) analyzedState(db *Database) error {
	refs := columnRefs(db.sch)
	// Ordinal-indexed key and keyword-set tables: the posting loop below
	// runs once per posting, and computing statsKey (two ToLower calls
	// plus a concatenation) or re-resolving the columnKeywords map there
	// dominates cold-start decode time on keyword-dense databases.
	keys := make([]string, len(refs))
	sets := make([]map[string]struct{}, len(refs))
	rowCounts := make([]int, len(refs))
	db.columnKeywords = make(map[string]map[string]struct{}, len(refs))
	for i, ref := range refs {
		keys[i] = statsKey(ref)
		sets[i] = make(map[string]struct{})
		db.columnKeywords[keys[i]] = sets[i]
		rowCounts[i] = len(db.relations[strings.ToLower(ref.Table)].Rows)
	}
	numStats, err := d.count()
	if err != nil {
		return err
	}
	db.stats = make(map[string]schema.Stats, numStats)
	for i := 0; i < numStats; i++ {
		ord, err := d.uvarint()
		if err != nil {
			return err
		}
		if ord >= uint64(len(refs)) {
			return d.fail("stats column ordinal %d out of range", ord)
		}
		st := schema.Stats{Ref: refs[ord]}
		kind, err := d.byte()
		if err != nil {
			return err
		}
		st.Type = value.Kind(kind)
		if st.Min, err = d.value(); err != nil {
			return err
		}
		if st.Max, err = d.value(); err != nil {
			return err
		}
		fields := []*int{&st.MaxLength, &st.RowCount, &st.NullCount, &st.Distinct}
		for _, f := range fields {
			v, err := d.uvarint()
			if err != nil {
				return err
			}
			*f = int(v)
		}
		db.stats[keys[ord]] = st
	}

	numKeywords, err := d.count()
	if err != nil {
		return err
	}
	db.inverted = make(map[string][]Posting, numKeywords)
	for i := 0; i < numKeywords; i++ {
		kw, err := d.string()
		if err != nil {
			return err
		}
		numPostings, err := d.count()
		if err != nil {
			return err
		}
		postings := make([]Posting, numPostings)
		col, row := 0, 0
		marked := -1 // last column marked for kw; postings cluster by column
		for pi := range postings {
			dc, err := d.varint()
			if err != nil {
				return err
			}
			dr, err := d.varint()
			if err != nil {
				return err
			}
			col += int(dc)
			row += int(dr)
			// Bound row by the referenced table's decoded row count, not
			// just zero: an index past the relation would otherwise defer
			// the failure to a panic at query time.
			if col < 0 || col >= len(refs) || row < 0 || row >= rowCounts[col] {
				return d.fail("posting out of range (col %d, row %d)", col, row)
			}
			postings[pi] = Posting{Ref: refs[col], Row: row}
			if col != marked {
				sets[col][kw] = struct{}{}
				marked = col
			}
		}
		db.inverted[kw] = postings
	}
	db.analyzed = true
	return nil
}
