package mem

import (
	"errors"
	"fmt"
	"testing"

	"prism/internal/schema"
	"prism/internal/value"
)

// bigJoinDB builds a two-table database large enough that a join scans more
// than interruptEvery rows, so the Interrupt poll is guaranteed to fire.
func bigJoinDB(t testing.TB) *Database {
	t.Helper()
	s := schema.New()
	for _, tab := range []*schema.Table{
		schema.MustTable("L",
			schema.Column{Name: "K", Type: value.Text},
			schema.Column{Name: "V", Type: value.Int},
		),
		schema.MustTable("R",
			schema.Column{Name: "K", Type: value.Text},
			schema.Column{Name: "W", Type: value.Int},
		),
	} {
		if err := s.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AddForeignKey(schema.ForeignKey{
		From: schema.ColumnRef{Table: "L", Column: "K"},
		To:   schema.ColumnRef{Table: "R", Column: "K"},
	}); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase("big", s)
	for i := 0; i < 3*interruptEvery; i++ {
		k := fmt.Sprintf("k%d", i)
		if err := db.InsertStrings("L", k, fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
		if err := db.InsertStrings("R", k, fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Analyze()
	return db
}

func bigJoinPlan() Plan {
	return Plan{
		Tables: []string{"L", "R"},
		Joins: []JoinEdge{{
			Left:  schema.ColumnRef{Table: "L", Column: "K"},
			Right: schema.ColumnRef{Table: "R", Column: "K"},
		}},
		Project: []schema.ColumnRef{{Table: "L", Column: "V"}, {Table: "R", Column: "W"}},
	}
}

func TestExecuteInterrupt(t *testing.T) {
	db := bigJoinDB(t)
	plan := bigJoinPlan()

	// An armed interrupt aborts mid-scan with ErrInterrupted and partial
	// stats instead of completing the join.
	polls := 0
	res, err := db.ExecuteWith(plan, ExecOptions{Interrupt: func() bool {
		polls++
		return true
	}})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if polls == 0 {
		t.Fatal("interrupt was never polled")
	}
	if res == nil {
		t.Fatal("interrupted execution should return partial stats")
	}
	if res.Stats.RowsScanned == 0 || res.Stats.RowsScanned >= 6*interruptEvery {
		t.Errorf("interrupted scan read %d rows; expected a prompt partial stop", res.Stats.RowsScanned)
	}

	// A disarmed interrupt changes nothing.
	full, err := db.ExecuteWith(plan, ExecOptions{Interrupt: func() bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	if full.NumRows() != 3*interruptEvery {
		t.Errorf("join lost rows under a passive interrupt: %d", full.NumRows())
	}
}

func TestExistsInterrupt(t *testing.T) {
	db := bigJoinDB(t)
	ok, _, err := db.Exists(bigJoinPlan(), ExecOptions{
		// Never match, so the scan cannot finish before the poll fires.
		TuplePredicate: func(value.Tuple) bool { return false },
		Interrupt:      func() bool { return true },
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if ok {
		t.Error("interrupted Exists must not report a match")
	}
}
