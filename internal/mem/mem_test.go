package mem

import (
	"strings"
	"testing"
	"testing/quick"

	"prism/internal/schema"
	"prism/internal/value"
)

// testSchema builds a small Mondial-like schema:
//
//	Lake(Name, Area)
//	geo_lake(Lake, Province)
//	Province(Name, Country, Population)
//	Country(Name, Code)
func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s := schema.New()
	add := func(tab *schema.Table) {
		if err := s.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	add(schema.MustTable("Lake",
		schema.Column{Name: "Name", Type: value.Text},
		schema.Column{Name: "Area", Type: value.Decimal},
	))
	add(schema.MustTable("geo_lake",
		schema.Column{Name: "Lake", Type: value.Text},
		schema.Column{Name: "Province", Type: value.Text},
	))
	add(schema.MustTable("Province",
		schema.Column{Name: "Name", Type: value.Text},
		schema.Column{Name: "Country", Type: value.Text},
		schema.Column{Name: "Population", Type: value.Int},
	))
	add(schema.MustTable("Country",
		schema.Column{Name: "Name", Type: value.Text},
		schema.Column{Name: "Code", Type: value.Text},
	))
	fks := []schema.ForeignKey{
		{From: schema.ColumnRef{Table: "geo_lake", Column: "Lake"}, To: schema.ColumnRef{Table: "Lake", Column: "Name"}},
		{From: schema.ColumnRef{Table: "geo_lake", Column: "Province"}, To: schema.ColumnRef{Table: "Province", Column: "Name"}},
		{From: schema.ColumnRef{Table: "Province", Column: "Country"}, To: schema.ColumnRef{Table: "Country", Column: "Name"}},
	}
	for _, fk := range fks {
		if err := s.AddForeignKey(fk); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// testDB populates the schema with the paper's Table 1 data.
func testDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase("mondial-mini", testSchema(t))
	rows := []struct {
		table string
		cells []string
	}{
		{"Lake", []string{"Lake Tahoe", "497"}},
		{"Lake", []string{"Crater Lake", "53.2"}},
		{"Lake", []string{"Fort Peck Lake", "981"}},
		{"Lake", []string{"Lake Michigan", "58000"}},
		{"geo_lake", []string{"Lake Tahoe", "California"}},
		{"geo_lake", []string{"Lake Tahoe", "Nevada"}},
		{"geo_lake", []string{"Crater Lake", "Oregon"}},
		{"geo_lake", []string{"Fort Peck Lake", "Florida"}},
		{"geo_lake", []string{"Lake Michigan", "Michigan"}},
		{"Province", []string{"California", "United States", "39500000"}},
		{"Province", []string{"Nevada", "United States", "3100000"}},
		{"Province", []string{"Oregon", "United States", "4200000"}},
		{"Province", []string{"Florida", "United States", "21500000"}},
		{"Province", []string{"Michigan", "United States", "10000000"}},
		{"Country", []string{"United States", "USA"}},
	}
	for _, r := range rows {
		if err := db.InsertStrings(r.table, r.cells...); err != nil {
			t.Fatalf("insert %v: %v", r, err)
		}
	}
	db.Analyze()
	return db
}

func ref(table, col string) schema.ColumnRef { return schema.ColumnRef{Table: table, Column: col} }

func TestInsertValidation(t *testing.T) {
	db := NewDatabase("t", testSchema(t))
	if err := db.Insert("nope", value.Tuple{}); err == nil {
		t.Error("insert into unknown table should fail")
	}
	if err := db.Insert("Lake", value.Tuple{value.NewText("x")}); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := db.Insert("Lake", value.Tuple{value.NewText("x"), value.NewText("abc")}); err == nil {
		t.Error("non-coercible value should fail")
	}
	if err := db.Insert("Lake", value.Tuple{value.NewText("x"), value.NewInt(5)}); err != nil {
		t.Errorf("int should coerce to decimal: %v", err)
	}
	if err := db.Insert("Lake", value.Tuple{value.NullValue, value.NullValue}); err != nil {
		t.Errorf("nulls should insert: %v", err)
	}
	if err := db.InsertStrings("Lake", "only-one"); err == nil {
		t.Error("InsertStrings arity mismatch should fail")
	}
	if err := db.InsertStrings("Lake", "ok", "not-a-number"); err == nil {
		t.Error("InsertStrings bad decimal should fail")
	}
	if err := db.InsertStrings("missing", "x"); err == nil {
		t.Error("InsertStrings unknown table should fail")
	}
	if db.NumRows("Lake") != 2 {
		t.Errorf("NumRows = %d", db.NumRows("Lake"))
	}
	if db.NumRows("missing") != 0 {
		t.Error("NumRows for unknown table should be 0")
	}
}

func TestBulkInsertAndTotals(t *testing.T) {
	db := NewDatabase("t", testSchema(t))
	tuples := []value.Tuple{
		{value.NewText("A"), value.NewDecimal(1)},
		{value.NewText("B"), value.NewDecimal(2)},
	}
	if err := db.BulkInsert("Lake", tuples); err != nil {
		t.Fatal(err)
	}
	if db.TotalRows() != 2 {
		t.Errorf("TotalRows = %d", db.TotalRows())
	}
	if err := db.BulkInsert("Lake", []value.Tuple{{value.NewText("x")}}); err == nil {
		t.Error("bulk insert with bad tuple should fail")
	}
}

func TestAnalyzeStats(t *testing.T) {
	db := testDB(t)
	st, ok := db.Stats(ref("Lake", "Area"))
	if !ok {
		t.Fatal("stats for Lake.Area missing")
	}
	if st.Type != value.Decimal || st.RowCount != 4 || st.NullCount != 0 {
		t.Errorf("stats: %+v", st)
	}
	if st.Min.Decimal() != 53.2 || st.Max.Decimal() != 58000 {
		t.Errorf("min/max: %v %v", st.Min, st.Max)
	}
	if _, ok := db.Stats(ref("Lake", "Missing")); ok {
		t.Error("stats for unknown column should be absent")
	}
	all := db.AllStats()
	if len(all) != 9 {
		t.Errorf("AllStats len = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Ref.Less(all[i-1].Ref) {
			t.Error("AllStats not sorted")
		}
	}
}

func TestAnalyzeIdempotentAndInvalidation(t *testing.T) {
	db := testDB(t)
	if !db.Analyzed() {
		t.Fatal("expected analyzed")
	}
	db.Analyze() // no-op
	if err := db.InsertStrings("Country", "Canada", "CAN"); err != nil {
		t.Fatal(err)
	}
	if db.Analyzed() {
		t.Error("insert should invalidate analysis")
	}
	db.Analyze()
	st, _ := db.Stats(ref("Country", "Name"))
	if st.RowCount != 2 {
		t.Errorf("stats not refreshed: %+v", st)
	}
}

func TestInvertedIndex(t *testing.T) {
	db := testDB(t)
	postings := db.LookupKeyword("lake tahoe")
	if len(postings) != 3 { // Lake.Name once, geo_lake.Lake twice
		t.Errorf("postings for 'lake tahoe' = %d", len(postings))
	}
	cols := db.ColumnsWithKeyword("Lake Tahoe")
	if len(cols) != 2 {
		t.Fatalf("ColumnsWithKeyword = %v", cols)
	}
	if cols[0].String() != "Lake.Name" || cols[1].String() != "geo_lake.Lake" {
		t.Errorf("columns = %v", cols)
	}
	if !db.ColumnHasKeyword(ref("geo_lake", "Province"), "california") {
		t.Error("ColumnHasKeyword should be case-insensitive")
	}
	if db.ColumnHasKeyword(ref("Lake", "Name"), "california") {
		t.Error("California is not a lake name")
	}
	if db.ColumnHasKeyword(ref("No", "Col"), "x") {
		t.Error("unknown column should not match")
	}
	if db.KeywordFrequency(ref("geo_lake", "Lake"), "Lake Tahoe") != 2 {
		t.Error("KeywordFrequency should count both Tahoe rows")
	}
	if len(db.LookupKeyword("zzz")) != 0 {
		t.Error("unknown keyword should have no postings")
	}
	// Numbers are indexed by their rendering.
	if !db.ColumnHasKeyword(ref("Lake", "Area"), "497") {
		t.Error("numeric keyword lookup failed")
	}
}

func TestUnanalyzedLookups(t *testing.T) {
	db := NewDatabase("t", testSchema(t))
	if db.LookupKeyword("x") != nil {
		t.Error("lookup before Analyze should be nil")
	}
	if db.ColumnHasKeyword(ref("Lake", "Name"), "x") {
		t.Error("ColumnHasKeyword before Analyze should be false")
	}
	if _, ok := db.Stats(ref("Lake", "Name")); ok {
		t.Error("Stats before Analyze should be absent")
	}
	if err := db.requireAnalyzed(); err == nil {
		t.Error("requireAnalyzed should fail before Analyze")
	}
}

func TestColumnValues(t *testing.T) {
	db := testDB(t)
	vals, err := db.ColumnValues(ref("Lake", "Name"))
	if err != nil || len(vals) != 4 {
		t.Fatalf("ColumnValues: %v %v", vals, err)
	}
	if vals[0].Text() != "Lake Tahoe" {
		t.Errorf("first lake = %v", vals[0])
	}
	if _, err := db.ColumnValues(ref("nope", "x")); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := db.ColumnValues(ref("Lake", "nope")); err == nil {
		t.Error("unknown column should fail")
	}
	if f := db.DistinctFraction(ref("Lake", "Name")); f != 1.0 {
		t.Errorf("DistinctFraction = %v", f)
	}
	if f := db.DistinctFraction(ref("nope", "x")); f != 0 {
		t.Errorf("DistinctFraction unknown = %v", f)
	}
}

func lakePlan() Plan {
	return Plan{
		Tables: []string{"Lake", "geo_lake"},
		Joins: []JoinEdge{
			{Left: ref("Lake", "Name"), Right: ref("geo_lake", "Lake")},
		},
		Project: []schema.ColumnRef{
			ref("geo_lake", "Province"),
			ref("Lake", "Name"),
			ref("Lake", "Area"),
		},
	}
}

func TestPlanValidate(t *testing.T) {
	db := testDB(t)
	sch := db.Schema()
	if err := (Plan{}).Validate(sch); err == nil {
		t.Error("empty plan should be invalid")
	}
	if err := (Plan{Tables: []string{"nope"}}).Validate(sch); err == nil {
		t.Error("unknown table should be invalid")
	}
	if err := (Plan{Tables: []string{"Lake", "lake"}}).Validate(sch); err == nil {
		t.Error("duplicate table should be invalid")
	}
	p := lakePlan()
	if err := p.Validate(sch); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := lakePlan()
	bad.Joins = nil
	if err := bad.Validate(sch); err == nil {
		t.Error("disconnected plan should be invalid")
	}
	bad = lakePlan()
	bad.Joins[0].Left = ref("Province", "Name")
	if err := bad.Validate(sch); err == nil {
		t.Error("join referencing table outside plan should be invalid")
	}
	bad = lakePlan()
	bad.Project = append(bad.Project, ref("Country", "Name"))
	if err := bad.Validate(sch); err == nil {
		t.Error("projection outside plan should be invalid")
	}
	bad = lakePlan()
	bad.Project[0] = ref("geo_lake", "missing")
	if err := bad.Validate(sch); err == nil {
		t.Error("unknown projection column should be invalid")
	}
	bad = lakePlan()
	bad.Joins[0].Right = ref("geo_lake", "missing")
	if err := bad.Validate(sch); err == nil {
		t.Error("unknown join column should be invalid")
	}
	if got := p.String(); !strings.Contains(got, "Lake.Name = geo_lake.Lake") || !strings.Contains(got, "geo_lake.Province") {
		t.Errorf("Plan.String = %q", got)
	}
}

func TestExecuteLakeJoin(t *testing.T) {
	db := testDB(t)
	res, err := db.Execute(lakePlan())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 5 {
		t.Fatalf("expected 5 join rows, got %d:\n%s", res.NumRows(), res)
	}
	want := value.Tuple{value.NewText("California"), value.NewText("Lake Tahoe"), value.NewDecimal(497)}
	if !res.Contains(want) {
		t.Errorf("result missing %v:\n%s", want, res)
	}
	if res.Stats.JoinsExecuted != 1 || res.Stats.RowsScanned != 9 {
		t.Errorf("stats: %+v", res.Stats)
	}
	if !strings.Contains(res.String(), "Lake Tahoe") {
		t.Error("Result.String should include data")
	}
	if res.Contains(value.Tuple{value.NewText("Texas"), value.NewText("Lake Tahoe"), value.NewDecimal(497)}) {
		t.Error("Contains should reject absent tuple")
	}
}

func TestExecuteThreeWayJoin(t *testing.T) {
	db := testDB(t)
	p := Plan{
		Tables: []string{"Lake", "geo_lake", "Province", "Country"},
		Joins: []JoinEdge{
			{Left: ref("Lake", "Name"), Right: ref("geo_lake", "Lake")},
			{Left: ref("geo_lake", "Province"), Right: ref("Province", "Name")},
			{Left: ref("Province", "Country"), Right: ref("Country", "Name")},
		},
		Project: []schema.ColumnRef{ref("Country", "Code"), ref("Lake", "Name"), ref("Province", "Name")},
	}
	res, err := db.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 5 {
		t.Fatalf("rows = %d\n%s", res.NumRows(), res)
	}
	if !res.Contains(value.Tuple{value.NewText("USA"), value.NewText("Crater Lake"), value.NewText("Oregon")}) {
		t.Errorf("missing expected row:\n%s", res)
	}
	if res.Stats.JoinsExecuted != 3 {
		t.Errorf("JoinsExecuted = %d", res.Stats.JoinsExecuted)
	}
}

func TestExecuteSingleTable(t *testing.T) {
	db := testDB(t)
	p := Plan{
		Tables:  []string{"Lake"},
		Project: []schema.ColumnRef{ref("Lake", "Name")},
	}
	res, err := db.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestExecuteDistinct(t *testing.T) {
	db := testDB(t)
	p := Plan{
		Tables: []string{"Lake", "geo_lake"},
		Joins: []JoinEdge{
			{Left: ref("Lake", "Name"), Right: ref("geo_lake", "Lake")},
		},
		Project:  []schema.ColumnRef{ref("Lake", "Name")},
		Distinct: true,
	}
	res, err := db.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 4 { // Tahoe appears twice in geo_lake but distinct
		t.Errorf("distinct rows = %d\n%s", res.NumRows(), res)
	}
	p.Distinct = false
	res, _ = db.Execute(p)
	if res.NumRows() != 5 {
		t.Errorf("non-distinct rows = %d", res.NumRows())
	}
}

func TestExecutePushdownAndPredicates(t *testing.T) {
	db := testDB(t)
	opts := ExecOptions{
		ColumnPredicates: []ColumnPredicate{
			{Ref: ref("geo_lake", "Province"), Pred: func(v value.Value) bool {
				return v.MatchesKeyword("California") || v.MatchesKeyword("Nevada")
			}},
		},
	}
	res, err := db.ExecuteWith(lakePlan(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d\n%s", res.NumRows(), res)
	}
	if res.Stats.PredicateFiltered != 3 {
		t.Errorf("PredicateFiltered = %d", res.Stats.PredicateFiltered)
	}

	opts.TuplePredicate = func(tp value.Tuple) bool { return tp[0].MatchesKeyword("Nevada") }
	res, err = db.ExecuteWith(lakePlan(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 {
		t.Errorf("tuple predicate rows = %d", res.NumRows())
	}
	badOpts := ExecOptions{ColumnPredicates: []ColumnPredicate{{Ref: ref("geo_lake", "Nope"), Pred: func(value.Value) bool { return true }}}}
	if _, err := db.ExecuteWith(lakePlan(), badOpts); err == nil {
		t.Error("predicate on unknown column should fail")
	}
}

func TestExecuteLimitAndExists(t *testing.T) {
	db := testDB(t)
	res, err := db.ExecuteWith(lakePlan(), ExecOptions{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || !res.Stats.TerminatedEarly {
		t.Errorf("limit execution: rows=%d stats=%+v", res.NumRows(), res.Stats)
	}
	ok, st, err := db.Exists(lakePlan(), ExecOptions{})
	if err != nil || !ok {
		t.Fatalf("Exists: %v %v", ok, err)
	}
	if st.ResultRows != 1 {
		t.Errorf("Exists should stop at first row, stats=%+v", st)
	}
	// Exists with impossible predicate.
	ok, _, err = db.Exists(lakePlan(), ExecOptions{TuplePredicate: func(value.Tuple) bool { return false }})
	if err != nil || ok {
		t.Errorf("Exists impossible: %v %v", ok, err)
	}
	// Exists on invalid plan returns an error.
	if _, _, err := db.Exists(Plan{}, ExecOptions{}); err == nil {
		t.Error("Exists on invalid plan should fail")
	}
}

func TestExecuteMaxIntermediate(t *testing.T) {
	db := testDB(t)
	_, err := db.ExecuteWith(lakePlan(), ExecOptions{MaxIntermediate: 2})
	if err == nil {
		t.Error("expected abort when intermediate exceeds cap")
	}
}

func TestExecuteNullJoinKeys(t *testing.T) {
	db := testDB(t)
	if err := db.Insert("geo_lake", value.Tuple{value.NullValue, value.NewText("Nowhere")}); err != nil {
		t.Fatal(err)
	}
	db.Analyze()
	res, err := db.Execute(lakePlan())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 5 {
		t.Errorf("NULL join keys must not match: rows = %d", res.NumRows())
	}
}

func TestExecStatsAdd(t *testing.T) {
	a := ExecStats{RowsScanned: 1, IntermediateRows: 2, JoinsExecuted: 3, ResultRows: 4, PredicateFiltered: 5}
	b := ExecStats{RowsScanned: 10, TerminatedEarly: true, AbortedTooLarge: true}
	a.Add(b)
	if a.RowsScanned != 11 || !a.TerminatedEarly || !a.AbortedTooLarge || a.ResultRows != 4 {
		t.Errorf("Add: %+v", a)
	}
}

func TestJoinEdgeString(t *testing.T) {
	e := JoinEdge{Left: ref("Lake", "Name"), Right: ref("geo_lake", "Lake")}
	if e.String() != "Lake.Name = geo_lake.Lake" {
		t.Errorf("JoinEdge.String = %q", e.String())
	}
}

// Property: for the two-table lake join, the result size equals the number
// of geo_lake rows whose Lake value exists in Lake.Name, whatever rows we
// generate.
func TestJoinCardinalityProperty(t *testing.T) {
	f := func(lakeIDs []uint8, geoIDs []uint8) bool {
		if len(lakeIDs) > 40 {
			lakeIDs = lakeIDs[:40]
		}
		if len(geoIDs) > 40 {
			geoIDs = geoIDs[:40]
		}
		db := NewDatabase("prop", testSchema(t))
		lakeSet := make(map[string]bool)
		for _, id := range lakeIDs {
			name := lakeName(id)
			if lakeSet[name] {
				continue // keep Lake.Name unique so expected count is simple
			}
			lakeSet[name] = true
			if err := db.Insert("Lake", value.Tuple{value.NewText(name), value.NewDecimal(float64(id))}); err != nil {
				return false
			}
		}
		expected := 0
		for _, id := range geoIDs {
			name := lakeName(id)
			if err := db.Insert("geo_lake", value.Tuple{value.NewText(name), value.NewText("P")}); err != nil {
				return false
			}
			if lakeSet[name] {
				expected++
			}
		}
		db.Analyze()
		res, err := db.Execute(lakePlan())
		if err != nil {
			return false
		}
		return res.NumRows() == expected
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func lakeName(id uint8) string {
	return "lake-" + string(rune('a'+id%26)) + "-" + string(rune('0'+id%10))
}

func BenchmarkAnalyze(b *testing.B) {
	db := testDB(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.mu.Lock()
		db.analyzed = false
		db.mu.Unlock()
		db.Analyze()
	}
}

func BenchmarkExecuteLakeJoin(b *testing.B) {
	db := testDB(b)
	p := lakePlan()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := db.Execute(p); err != nil {
			b.Fatal(err)
		}
	}
}
