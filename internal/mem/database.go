// Package mem implements Prism's in-memory relational engine: the substrate
// the paper runs on top of a conventional DBMS.
//
// It provides typed row storage, per-column statistics (the "metadata
// collected during preprocessing" of §2.3), a keyword inverted index (the
// DBMS inverted index the paper leverages for value-constraint matching),
// and execution of Project-Join query plans with selection push-down and
// early termination — everything the discovery and filter-validation layers
// need.
package mem

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"prism/internal/schema"
	"prism/internal/value"
)

// Relation stores the rows of one table.
type Relation struct {
	Schema *schema.Table
	Rows   []value.Tuple
}

// NumRows returns the row count.
func (r *Relation) NumRows() int { return len(r.Rows) }

// Posting locates one keyword occurrence in the database.
type Posting struct {
	Ref schema.ColumnRef
	Row int
}

// Database is an in-memory relational database instance.
//
// A Database is safe for concurrent readers once Analyze has been called;
// writes (Insert) must not race with reads.
type Database struct {
	Name string

	sch       *schema.Schema
	relations map[string]*Relation

	mu       sync.RWMutex
	analyzed bool
	// version counts data mutations; session filter-outcome caches key on
	// it so entries computed against older contents can never be served
	// against newer ones.
	version  uint64
	stats    map[string]schema.Stats // key: lower(Table.Column)
	inverted map[string][]Posting    // key: normalised keyword
	// columnKeywords maps lower(Table.Column) -> set of normalised keywords
	// occurring in that column; used for per-column membership tests.
	columnKeywords map[string]map[string]struct{}
}

// NewDatabase creates an empty database over the given schema.
func NewDatabase(name string, sch *schema.Schema) *Database {
	db := &Database{
		Name:      name,
		sch:       sch,
		relations: make(map[string]*Relation),
	}
	for _, t := range sch.Tables() {
		db.relations[strings.ToLower(t.Name)] = &Relation{Schema: t}
	}
	return db
}

// Schema returns the database schema.
func (db *Database) Schema() *schema.Schema { return db.sch }

// Relation returns the stored relation for a table name.
func (db *Database) Relation(table string) (*Relation, bool) {
	r, ok := db.relations[strings.ToLower(table)]
	return r, ok
}

// NumRows returns the number of rows stored for table, or 0 if unknown.
func (db *Database) NumRows(table string) int {
	if r, ok := db.Relation(table); ok {
		return r.NumRows()
	}
	return 0
}

// TotalRows returns the number of rows across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, r := range db.relations {
		n += r.NumRows()
	}
	return n
}

// Insert appends a tuple to the named table. Values are coerced to the
// declared column types; incompatible values are an error.
func (db *Database) Insert(table string, tuple value.Tuple) error {
	rel, ok := db.Relation(table)
	if !ok {
		return fmt.Errorf("mem: unknown table %q", table)
	}
	if len(tuple) != rel.Schema.Arity() {
		return fmt.Errorf("mem: table %s expects %d values, got %d", rel.Schema.Name, rel.Schema.Arity(), len(tuple))
	}
	row := make(value.Tuple, len(tuple))
	for i, v := range tuple {
		if v.IsNull() {
			row[i] = value.NullValue
			continue
		}
		want := rel.Schema.Columns[i].Type
		coerced, ok := v.Coerce(want)
		if !ok {
			return fmt.Errorf("mem: table %s column %s: cannot store %s value %q as %s",
				rel.Schema.Name, rel.Schema.Columns[i].Name, v.Kind(), v.String(), want)
		}
		row[i] = coerced
	}
	// The row is published and the version bumped in one critical section,
	// so no reader can observe the new data under the old version — cache
	// keys tagged with a Version never describe newer contents.
	db.mu.Lock()
	rel.Rows = append(rel.Rows, row)
	db.analyzed = false
	db.version++
	db.mu.Unlock()
	return nil
}

// Version returns the data version of the database: a counter bumped by
// every mutation. Filter outcomes are ground truths *of one version* of the
// database, so session caches include it in their keys — a mutation makes
// every older entry unreachable rather than wrong.
func (db *Database) Version() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.version
}

// InsertStrings parses and inserts a row given as raw strings, coercing each
// cell to the declared column type.
func (db *Database) InsertStrings(table string, cells ...string) error {
	rel, ok := db.Relation(table)
	if !ok {
		return fmt.Errorf("mem: unknown table %q", table)
	}
	if len(cells) != rel.Schema.Arity() {
		return fmt.Errorf("mem: table %s expects %d values, got %d", rel.Schema.Name, rel.Schema.Arity(), len(cells))
	}
	tuple := make(value.Tuple, len(cells))
	for i, cell := range cells {
		v, err := value.ParseAs(cell, rel.Schema.Columns[i].Type)
		if err != nil {
			return fmt.Errorf("mem: table %s column %s: %w", rel.Schema.Name, rel.Schema.Columns[i].Name, err)
		}
		tuple[i] = v
	}
	return db.Insert(table, tuple)
}

// BulkInsert inserts many tuples into the named table.
func (db *Database) BulkInsert(table string, tuples []value.Tuple) error {
	for _, t := range tuples {
		if err := db.Insert(table, t); err != nil {
			return err
		}
	}
	return nil
}

func statsKey(ref schema.ColumnRef) string {
	return strings.ToLower(ref.Table) + "." + strings.ToLower(ref.Column)
}

// Analyze (re)builds column statistics and the keyword inverted index. It
// corresponds to the paper's preprocessing step and must be called before
// the lookup methods below. Calling it repeatedly is cheap when nothing has
// changed.
func (db *Database) Analyze() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.analyzed {
		return
	}
	db.stats = make(map[string]schema.Stats)
	db.inverted = make(map[string][]Posting)
	db.columnKeywords = make(map[string]map[string]struct{})
	for _, t := range db.sch.Tables() {
		rel := db.relations[strings.ToLower(t.Name)]
		for ci, col := range t.Columns {
			ref := schema.ColumnRef{Table: t.Name, Column: col.Name}
			collector := schema.NewStatsCollector(ref, col.Type)
			key := statsKey(ref)
			kwset := make(map[string]struct{})
			for ri, row := range rel.Rows {
				v := row[ci]
				collector.Add(v)
				if v.IsNull() {
					continue
				}
				kw := value.Normalize(v.String())
				if kw == "" {
					continue
				}
				db.inverted[kw] = append(db.inverted[kw], Posting{Ref: ref, Row: ri})
				kwset[kw] = struct{}{}
			}
			db.stats[key] = collector.Stats()
			db.columnKeywords[key] = kwset
		}
	}
	db.analyzed = true
}

// Analyzed reports whether statistics and indexes are current.
func (db *Database) Analyzed() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.analyzed
}

func (db *Database) requireAnalyzed() error {
	if !db.Analyzed() {
		return fmt.Errorf("mem: database %q has not been analyzed; call Analyze first", db.Name)
	}
	return nil
}

// Stats returns the preprocessed statistics for a column.
func (db *Database) Stats(ref schema.ColumnRef) (schema.Stats, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.stats == nil {
		return schema.Stats{}, false
	}
	st, ok := db.stats[statsKey(ref)]
	return st, ok
}

// AllStats returns statistics for every column, sorted by column reference.
func (db *Database) AllStats() []schema.Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]schema.Stats, 0, len(db.stats))
	for _, st := range db.stats {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ref.Less(out[j].Ref) })
	return out
}

// LookupKeyword returns the postings of an exact (case-insensitive) keyword
// across all columns, using the inverted index.
func (db *Database) LookupKeyword(keyword string) []Posting {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.inverted == nil {
		return nil
	}
	return db.inverted[value.Normalize(keyword)]
}

// ColumnsWithKeyword returns the set of columns whose values include the
// exact keyword (case-insensitive), sorted.
func (db *Database) ColumnsWithKeyword(keyword string) []schema.ColumnRef {
	postings := db.LookupKeyword(keyword)
	seen := make(map[string]schema.ColumnRef)
	for _, p := range postings {
		seen[statsKey(p.Ref)] = p.Ref
	}
	out := make([]schema.ColumnRef, 0, len(seen))
	for _, ref := range seen {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ColumnHasKeyword reports whether the given column contains the exact
// keyword (case-insensitive).
func (db *Database) ColumnHasKeyword(ref schema.ColumnRef, keyword string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.columnKeywords == nil {
		return false
	}
	set, ok := db.columnKeywords[statsKey(ref)]
	if !ok {
		return false
	}
	_, hit := set[value.Normalize(keyword)]
	return hit
}

// ColumnValues returns all values stored in the given column, in row order.
func (db *Database) ColumnValues(ref schema.ColumnRef) ([]value.Value, error) {
	rel, ok := db.Relation(ref.Table)
	if !ok {
		return nil, fmt.Errorf("mem: unknown table %q", ref.Table)
	}
	ci := rel.Schema.ColumnIndex(ref.Column)
	if ci < 0 {
		return nil, fmt.Errorf("mem: unknown column %q in table %q", ref.Column, ref.Table)
	}
	out := make([]value.Value, len(rel.Rows))
	for i, row := range rel.Rows {
		out[i] = row[ci]
	}
	return out, nil
}

// DistinctFraction returns Distinct/NonNull for a column (0 when empty). It
// is a convenience used by the selectivity estimators.
func (db *Database) DistinctFraction(ref schema.ColumnRef) float64 {
	st, ok := db.Stats(ref)
	if !ok || st.NonNullCount() == 0 {
		return 0
	}
	return float64(st.Distinct) / float64(st.NonNullCount())
}

// KeywordFrequency returns the number of rows of ref whose value equals the
// keyword, using the inverted index.
func (db *Database) KeywordFrequency(ref schema.ColumnRef, keyword string) int {
	postings := db.LookupKeyword(keyword)
	n := 0
	for _, p := range postings {
		if strings.EqualFold(p.Ref.Table, ref.Table) && strings.EqualFold(p.Ref.Column, ref.Column) {
			n++
		}
	}
	return n
}
