// Package graphx models the source database schema graph (tables connected
// by foreign keys) and enumerates the join trees that candidate schema
// mapping queries are built from (§2.3 step #1: "exhaustively search
// through the source database schema graph and find all possible join
// paths, each connecting a set of related columns that altogether can be
// mapped to all columns in the target schema").
package graphx

import (
	"fmt"
	"sort"
	"strings"

	"prism/internal/exec"
	"prism/internal/schema"
)

// Graph is the undirected schema graph: one node per table, one edge per
// foreign key.
type Graph struct {
	sch *schema.Schema
	// adj maps lower(table) -> incident foreign keys.
	adj map[string][]schema.ForeignKey
}

// New builds the schema graph for a schema.
func New(sch *schema.Schema) *Graph {
	g := &Graph{sch: sch, adj: make(map[string][]schema.ForeignKey)}
	for _, fk := range sch.ForeignKeys() {
		g.adj[strings.ToLower(fk.From.Table)] = append(g.adj[strings.ToLower(fk.From.Table)], fk)
		g.adj[strings.ToLower(fk.To.Table)] = append(g.adj[strings.ToLower(fk.To.Table)], fk)
	}
	return g
}

// Schema returns the underlying schema.
func (g *Graph) Schema() *schema.Schema { return g.sch }

// Edges returns the foreign keys incident to a table.
func (g *Graph) Edges(table string) []schema.ForeignKey {
	return g.adj[strings.ToLower(table)]
}

// Neighbors returns the tables adjacent to a table in the schema graph.
func (g *Graph) Neighbors(table string) []string {
	var out []string
	seen := make(map[string]struct{})
	for _, fk := range g.Edges(table) {
		other := fk.To.Table
		if strings.EqualFold(other, table) {
			other = fk.From.Table
		}
		key := strings.ToLower(other)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, other)
	}
	sort.Strings(out)
	return out
}

// Tree is a connected, acyclic set of schema-graph edges: the join skeleton
// of a candidate Project-Join query. A single-table tree has no edges.
type Tree struct {
	Tables []string
	Edges  []schema.ForeignKey
}

// Size returns the number of tables in the tree.
func (t Tree) Size() int { return len(t.Tables) }

// Contains reports whether the tree includes the table.
func (t Tree) Contains(table string) bool {
	for _, tb := range t.Tables {
		if strings.EqualFold(tb, table) {
			return true
		}
	}
	return false
}

// Leaves returns the tables of degree <= 1 within the tree.
func (t Tree) Leaves() []string {
	if len(t.Tables) == 1 {
		return append([]string(nil), t.Tables...)
	}
	degree := make(map[string]int)
	for _, e := range t.Edges {
		degree[strings.ToLower(e.From.Table)]++
		degree[strings.ToLower(e.To.Table)]++
	}
	var out []string
	for _, tb := range t.Tables {
		if degree[strings.ToLower(tb)] <= 1 {
			out = append(out, tb)
		}
	}
	sort.Strings(out)
	return out
}

// Canonical returns a deterministic signature of the tree (sorted edge
// list, or the table name for single-table trees), used for deduplication.
func (t Tree) Canonical() string {
	if len(t.Edges) == 0 {
		if len(t.Tables) == 0 {
			return ""
		}
		return strings.ToLower(t.Tables[0])
	}
	keys := make([]string, len(t.Edges))
	for i, e := range t.Edges {
		a, b := strings.ToLower(e.From.String()), strings.ToLower(e.To.String())
		if a > b {
			a, b = b, a
		}
		keys[i] = a + "=" + b
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// String renders the tree compactly.
func (t Tree) String() string {
	if len(t.Edges) == 0 {
		return strings.Join(t.Tables, ",")
	}
	parts := make([]string, len(t.Edges))
	for i, e := range t.Edges {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// clone deep-copies the tree.
func (t Tree) clone() Tree {
	return Tree{
		Tables: append([]string(nil), t.Tables...),
		Edges:  append([]schema.ForeignKey(nil), t.Edges...),
	}
}

// ConnectedTrees enumerates every connected subtree of the schema graph that
// contains the seed table and has at most maxTables tables. The seed-only
// tree is included. Trees are deduplicated by canonical signature.
func (g *Graph) ConnectedTrees(seed string, maxTables int) []Tree {
	canonicalName := seed
	if tbl, ok := g.sch.Table(seed); ok {
		canonicalName = tbl.Name
	}
	if maxTables < 1 {
		return nil
	}
	start := Tree{Tables: []string{canonicalName}}
	seen := map[string]struct{}{start.Canonical(): {}}
	out := []Tree{start}
	var expand func(t Tree)
	expand = func(t Tree) {
		if t.Size() >= maxTables {
			return
		}
		for _, table := range t.Tables {
			for _, fk := range g.Edges(table) {
				other := fk.To.Table
				if strings.EqualFold(fk.To.Table, table) {
					other = fk.From.Table
				}
				if t.Contains(other) {
					continue
				}
				next := t.clone()
				next.Tables = append(next.Tables, other)
				next.Edges = append(next.Edges, fk)
				key := next.Canonical()
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				out = append(out, next)
				expand(next)
			}
		}
	}
	expand(start)
	return out
}

// Candidate is one candidate schema mapping query: a join tree plus the
// assignment of one source column per target column.
type Candidate struct {
	Tree Tree
	// Projection maps target-column position -> source column.
	Projection []schema.ColumnRef
}

// Canonical returns a deterministic signature of the candidate.
func (c Candidate) Canonical() string {
	parts := make([]string, 0, len(c.Projection)+1)
	parts = append(parts, c.Tree.Canonical())
	for _, ref := range c.Projection {
		parts = append(parts, strings.ToLower(ref.String()))
	}
	return strings.Join(parts, "#")
}

// Plan converts the candidate into an executable Project-Join plan.
func (c Candidate) Plan() exec.Plan {
	joins := make([]exec.JoinEdge, len(c.Tree.Edges))
	for i, e := range c.Tree.Edges {
		joins[i] = exec.JoinEdge{Left: e.From, Right: e.To}
	}
	return exec.Plan{
		Tables:  append([]string(nil), c.Tree.Tables...),
		Joins:   joins,
		Project: append([]schema.ColumnRef(nil), c.Projection...),
	}
}

// String renders the candidate.
func (c Candidate) String() string {
	cols := make([]string, len(c.Projection))
	for i, ref := range c.Projection {
		cols[i] = ref.String()
	}
	return fmt.Sprintf("π(%s) over [%s]", strings.Join(cols, ", "), c.Tree)
}

// EnumerateOptions tune candidate enumeration.
type EnumerateOptions struct {
	// MaxTables bounds the join-tree size (default 4).
	MaxTables int
	// MaxCandidates bounds the number of candidates returned (default 5000).
	MaxCandidates int
	// RequireUsefulLeaves drops candidates whose join tree has a leaf table
	// hosting no projected column (such a leaf only filters rows and is
	// never needed for a Project-Join mapping; default true via Enumerate).
	RequireUsefulLeaves bool
}

func (o EnumerateOptions) withDefaults() EnumerateOptions {
	if o.MaxTables <= 0 {
		o.MaxTables = 4
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 5000
	}
	return o
}

// Enumerate produces candidate schema mapping queries from the per-target-
// column sets of related source columns. related[i] lists the feasible
// source columns for target column i; every target column must have at
// least one.
func Enumerate(g *Graph, related [][]schema.ColumnRef, opts EnumerateOptions) ([]Candidate, error) {
	opts = opts.withDefaults()
	if len(related) == 0 {
		return nil, fmt.Errorf("graphx: no target columns")
	}
	for i, cols := range related {
		if len(cols) == 0 {
			return nil, fmt.Errorf("graphx: target column %d has no related source columns", i+1)
		}
	}

	// Seed tables: every table hosting at least one related column.
	seedSet := make(map[string]string) // lower -> canonical
	for _, cols := range related {
		for _, ref := range cols {
			seedSet[strings.ToLower(ref.Table)] = ref.Table
		}
	}
	seeds := make([]string, 0, len(seedSet))
	for _, t := range seedSet {
		seeds = append(seeds, t)
	}
	sort.Strings(seeds)

	// Enumerate candidate trees from every seed, deduplicated.
	treeSeen := make(map[string]struct{})
	var trees []Tree
	for _, seed := range seeds {
		for _, t := range g.ConnectedTrees(seed, opts.MaxTables) {
			key := t.Canonical()
			if _, dup := treeSeen[key]; dup {
				continue
			}
			treeSeen[key] = struct{}{}
			trees = append(trees, t)
		}
	}
	// Deterministic order: smaller trees first (cheaper candidates are
	// preferred and validated earlier), then by signature.
	sort.Slice(trees, func(i, j int) bool {
		if trees[i].Size() != trees[j].Size() {
			return trees[i].Size() < trees[j].Size()
		}
		return trees[i].Canonical() < trees[j].Canonical()
	})

	candSeen := make(map[string]struct{})
	var out []Candidate
	for _, tree := range trees {
		// Related columns available inside this tree, per target column.
		choices := make([][]schema.ColumnRef, len(related))
		feasible := true
		for i, cols := range related {
			for _, ref := range cols {
				if tree.Contains(ref.Table) {
					choices[i] = append(choices[i], ref)
				}
			}
			if len(choices[i]) == 0 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		// Cartesian product of per-column choices.
		assignment := make([]schema.ColumnRef, len(related))
		var emit func(col int) bool
		emit = func(col int) bool {
			if len(out) >= opts.MaxCandidates {
				return false
			}
			if col == len(related) {
				cand := Candidate{Tree: tree, Projection: append([]schema.ColumnRef(nil), assignment...)}
				if opts.RequireUsefulLeaves && !leavesUseful(tree, cand.Projection) {
					return true
				}
				key := cand.Canonical()
				if _, dup := candSeen[key]; dup {
					return true
				}
				candSeen[key] = struct{}{}
				out = append(out, cand)
				return true
			}
			for _, ref := range choices[col] {
				assignment[col] = ref
				if !emit(col + 1) {
					return false
				}
			}
			return true
		}
		if !emit(0) {
			break
		}
	}
	return out, nil
}

// leavesUseful reports whether every leaf table of the tree hosts at least
// one projected column.
func leavesUseful(tree Tree, projection []schema.ColumnRef) bool {
	if tree.Size() <= 1 {
		return true
	}
	used := make(map[string]bool)
	for _, ref := range projection {
		used[strings.ToLower(ref.Table)] = true
	}
	for _, leaf := range tree.Leaves() {
		if !used[strings.ToLower(leaf)] {
			return false
		}
	}
	return true
}
