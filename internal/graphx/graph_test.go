package graphx

import (
	"strings"
	"testing"

	"prism/internal/schema"
	"prism/internal/value"
)

// mondialMiniSchema builds the Lake / geo_lake / Province / Country chain
// plus a City table hanging off Province, giving the graph a branch.
func mondialMiniSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s := schema.New()
	add := func(tab *schema.Table) {
		if err := s.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	add(schema.MustTable("Lake",
		schema.Column{Name: "Name", Type: value.Text},
		schema.Column{Name: "Area", Type: value.Decimal},
	))
	add(schema.MustTable("geo_lake",
		schema.Column{Name: "Lake", Type: value.Text},
		schema.Column{Name: "Province", Type: value.Text},
	))
	add(schema.MustTable("Province",
		schema.Column{Name: "Name", Type: value.Text},
		schema.Column{Name: "Country", Type: value.Text},
	))
	add(schema.MustTable("Country",
		schema.Column{Name: "Name", Type: value.Text},
		schema.Column{Name: "Code", Type: value.Text},
	))
	add(schema.MustTable("City",
		schema.Column{Name: "Name", Type: value.Text},
		schema.Column{Name: "Province", Type: value.Text},
		schema.Column{Name: "Population", Type: value.Int},
	))
	fk := func(ft, fc, tt, tc string) {
		if err := s.AddForeignKey(schema.ForeignKey{
			From: schema.ColumnRef{Table: ft, Column: fc},
			To:   schema.ColumnRef{Table: tt, Column: tc},
		}); err != nil {
			t.Fatal(err)
		}
	}
	fk("geo_lake", "Lake", "Lake", "Name")
	fk("geo_lake", "Province", "Province", "Name")
	fk("Province", "Country", "Country", "Name")
	fk("City", "Province", "Province", "Name")
	return s
}

func ref(t, c string) schema.ColumnRef { return schema.ColumnRef{Table: t, Column: c} }

func TestNeighborsAndEdges(t *testing.T) {
	g := New(mondialMiniSchema(t))
	if got := g.Neighbors("Province"); len(got) != 3 {
		t.Errorf("Neighbors(Province) = %v", got)
	}
	if got := g.Neighbors("Lake"); len(got) != 1 || got[0] != "geo_lake" {
		t.Errorf("Neighbors(Lake) = %v", got)
	}
	if got := g.Neighbors("Unknown"); got != nil {
		t.Errorf("Neighbors(Unknown) = %v", got)
	}
	if len(g.Edges("geo_lake")) != 2 {
		t.Errorf("Edges(geo_lake) = %v", g.Edges("geo_lake"))
	}
	if g.Schema() == nil {
		t.Error("Schema accessor")
	}
}

func TestConnectedTrees(t *testing.T) {
	g := New(mondialMiniSchema(t))
	trees := g.ConnectedTrees("Lake", 1)
	if len(trees) != 1 || trees[0].Size() != 1 {
		t.Fatalf("maxTables=1 should yield only the seed tree: %v", trees)
	}
	trees = g.ConnectedTrees("Lake", 2)
	if len(trees) != 2 {
		t.Fatalf("maxTables=2 trees = %v", trees)
	}
	trees = g.ConnectedTrees("Lake", 5)
	// Trees containing Lake: {L}, {L,g}, {L,g,P}, {L,g,P,C}, {L,g,P,City},
	// {L,g,P,C,City} => 6.
	if len(trees) != 6 {
		t.Fatalf("maxTables=5 trees = %d: %v", len(trees), trees)
	}
	// All trees contain the seed, are acyclic and connected (edges = tables-1).
	for _, tr := range trees {
		if !tr.Contains("Lake") {
			t.Errorf("tree %v missing seed", tr)
		}
		if len(tr.Edges) != tr.Size()-1 {
			t.Errorf("tree %v is not a tree", tr)
		}
	}
	if got := g.ConnectedTrees("Lake", 0); got != nil {
		t.Error("maxTables=0 should yield nothing")
	}
	// Seed casing is canonicalised.
	trees = g.ConnectedTrees("lake", 1)
	if trees[0].Tables[0] != "Lake" {
		t.Errorf("seed should canonicalise to declared casing: %v", trees[0].Tables)
	}
}

func TestTreeHelpers(t *testing.T) {
	g := New(mondialMiniSchema(t))
	var threeTable Tree
	for _, tr := range g.ConnectedTrees("Lake", 3) {
		if tr.Size() == 3 {
			threeTable = tr
		}
	}
	if threeTable.Size() != 3 {
		t.Fatal("expected a 3-table tree")
	}
	leaves := threeTable.Leaves()
	if len(leaves) != 2 || leaves[0] != "Lake" || leaves[1] != "Province" {
		t.Errorf("Leaves = %v", leaves)
	}
	single := Tree{Tables: []string{"Lake"}}
	if got := single.Leaves(); len(got) != 1 || got[0] != "Lake" {
		t.Errorf("single-table leaves = %v", got)
	}
	if single.Canonical() != "lake" {
		t.Errorf("single canonical = %q", single.Canonical())
	}
	if (Tree{}).Canonical() != "" {
		t.Error("empty tree canonical should be empty")
	}
	if single.String() != "Lake" {
		t.Errorf("single String = %q", single.String())
	}
	if !strings.Contains(threeTable.String(), "->") {
		t.Errorf("tree String = %q", threeTable.String())
	}
	// Canonical is order-insensitive over edges.
	rev := Tree{Tables: threeTable.Tables, Edges: []schema.ForeignKey{threeTable.Edges[1], threeTable.Edges[0]}}
	if rev.Canonical() != threeTable.Canonical() {
		t.Error("canonical should not depend on edge order")
	}
}

func TestCandidatePlanAndString(t *testing.T) {
	g := New(mondialMiniSchema(t))
	related := [][]schema.ColumnRef{
		{ref("geo_lake", "Province")},
		{ref("Lake", "Name")},
		{ref("Lake", "Area")},
	}
	cands, err := Enumerate(g, related, EnumerateOptions{RequireUsefulLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	first := cands[0]
	plan := first.Plan()
	if err := plan.Validate(g.Schema()); err != nil {
		t.Errorf("candidate plan invalid: %v", err)
	}
	if len(plan.Project) != 3 {
		t.Errorf("plan projection = %v", plan.Project)
	}
	if !strings.Contains(first.String(), "Lake.Name") {
		t.Errorf("candidate String = %q", first.String())
	}
	if first.Canonical() == "" {
		t.Error("canonical should not be empty")
	}
}

func TestEnumerateLakeExample(t *testing.T) {
	g := New(mondialMiniSchema(t))
	related := [][]schema.ColumnRef{
		{ref("geo_lake", "Province"), ref("Province", "Name")},
		{ref("Lake", "Name"), ref("geo_lake", "Lake")},
		{ref("Lake", "Area")},
	}
	cands, err := Enumerate(g, related, EnumerateOptions{MaxTables: 3, RequireUsefulLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("expected candidates")
	}
	// The paper's desired query must be among them: tree {Lake, geo_lake},
	// projection geo_lake.Province, Lake.Name, Lake.Area.
	found := false
	for _, c := range cands {
		if c.Tree.Size() != 2 {
			continue
		}
		p := c.Projection
		if strings.EqualFold(p[0].String(), "geo_lake.Province") &&
			strings.EqualFold(p[1].String(), "Lake.Name") &&
			strings.EqualFold(p[2].String(), "Lake.Area") {
			found = true
		}
	}
	if !found {
		t.Errorf("desired candidate not enumerated; got %d candidates", len(cands))
	}
	// No duplicate canonical signatures.
	seen := make(map[string]bool)
	for _, c := range cands {
		if seen[c.Canonical()] {
			t.Errorf("duplicate candidate %s", c)
		}
		seen[c.Canonical()] = true
	}
	// Candidates are ordered smaller trees first.
	for i := 1; i < len(cands); i++ {
		if cands[i].Tree.Size() < cands[i-1].Tree.Size() {
			t.Error("candidates not ordered by tree size")
			break
		}
	}
}

func TestEnumerateUsefulLeafPruning(t *testing.T) {
	g := New(mondialMiniSchema(t))
	related := [][]schema.ColumnRef{
		{ref("Lake", "Name")},
		{ref("Lake", "Area")},
	}
	all, err := Enumerate(g, related, EnumerateOptions{MaxTables: 3, RequireUsefulLeaves: false})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Enumerate(g, related, EnumerateOptions{MaxTables: 3, RequireUsefulLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 1 {
		t.Errorf("with useful-leaf pruning only the single-table candidate should remain, got %d", len(pruned))
	}
	if len(all) <= len(pruned) {
		t.Errorf("unpruned enumeration should be larger: %d vs %d", len(all), len(pruned))
	}
	for _, c := range pruned {
		if c.Tree.Size() != 1 {
			t.Errorf("unexpected multi-table candidate %s", c)
		}
	}
}

func TestEnumerateErrorsAndCaps(t *testing.T) {
	g := New(mondialMiniSchema(t))
	if _, err := Enumerate(g, nil, EnumerateOptions{}); err == nil {
		t.Error("no target columns should fail")
	}
	if _, err := Enumerate(g, [][]schema.ColumnRef{{}}, EnumerateOptions{}); err == nil {
		t.Error("target column without related columns should fail")
	}
	related := [][]schema.ColumnRef{
		{ref("geo_lake", "Province"), ref("Province", "Name"), ref("City", "Province")},
		{ref("Lake", "Name"), ref("geo_lake", "Lake"), ref("City", "Name"), ref("Country", "Name")},
		{ref("Lake", "Area"), ref("City", "Population")},
	}
	capped, err := Enumerate(g, related, EnumerateOptions{MaxTables: 4, MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped) != 3 {
		t.Errorf("MaxCandidates cap not respected: %d", len(capped))
	}
	uncapped, err := Enumerate(g, related, EnumerateOptions{MaxTables: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(uncapped) <= 3 {
		t.Errorf("expected more candidates without cap, got %d", len(uncapped))
	}
}

func TestEnumerateDisconnectedRelatedColumns(t *testing.T) {
	// Add an island table with no foreign keys; related columns there can
	// only be served by single-table candidates.
	s := mondialMiniSchema(t)
	if err := s.AddTable(schema.MustTable("Island", schema.Column{Name: "Name", Type: value.Text})); err != nil {
		t.Fatal(err)
	}
	g := New(s)
	related := [][]schema.ColumnRef{
		{ref("Island", "Name"), ref("Lake", "Name")},
		{ref("Lake", "Area")},
	}
	cands, err := Enumerate(g, related, EnumerateOptions{MaxTables: 3, RequireUsefulLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Tree.Contains("Island") && c.Tree.Size() > 1 {
			t.Errorf("island cannot join with other tables: %s", c)
		}
	}
	if len(cands) == 0 {
		t.Error("the Lake-only candidate should still exist")
	}
}

func BenchmarkConnectedTrees(b *testing.B) {
	g := New(mondialMiniSchema(b))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := g.ConnectedTrees("Lake", 5); len(got) == 0 {
			b.Fatal("no trees")
		}
	}
}

func BenchmarkEnumerate(b *testing.B) {
	g := New(mondialMiniSchema(b))
	related := [][]schema.ColumnRef{
		{ref("geo_lake", "Province"), ref("Province", "Name")},
		{ref("Lake", "Name"), ref("geo_lake", "Lake")},
		{ref("Lake", "Area")},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Enumerate(g, related, EnumerateOptions{MaxTables: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
