// Package schema describes the relational structure of a Prism source
// database: tables, typed columns, foreign keys, and the per-column
// statistics ("metadata") collected during preprocessing that low-resolution
// metadata constraints are checked against.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"prism/internal/value"
)

// Column describes one attribute of a table.
type Column struct {
	// Name is the attribute name, unique within its table.
	Name string
	// Type is the declared data type of the column.
	Type value.Kind
	// Comment is optional human-readable documentation.
	Comment string
}

// ColumnRef names a column globally as Table.Column.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders the reference in SQL dotted notation.
func (r ColumnRef) String() string { return r.Table + "." + r.Column }

// Less orders references lexicographically; used for canonicalisation.
func (r ColumnRef) Less(o ColumnRef) bool {
	if r.Table != o.Table {
		return r.Table < o.Table
	}
	return r.Column < o.Column
}

// ForeignKey declares that From references To (a key join edge in the
// schema graph). Prism enumerates join trees along these edges.
type ForeignKey struct {
	From ColumnRef
	To   ColumnRef
}

// String renders the foreign key as "a.b -> c.d".
func (fk ForeignKey) String() string { return fk.From.String() + " -> " + fk.To.String() }

// Table is the schema of one relation.
type Table struct {
	Name    string
	Columns []Column
	// PrimaryKey lists column names forming the primary key (may be empty).
	PrimaryKey []string
	Comment    string

	byName map[string]int
}

// NewTable constructs a table schema and validates column-name uniqueness.
func NewTable(name string, cols ...Column) (*Table, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("schema: table name must not be empty")
	}
	t := &Table{Name: name, Columns: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range t.Columns {
		if strings.TrimSpace(c.Name) == "" {
			return nil, fmt.Errorf("schema: table %s: column %d has empty name", name, i)
		}
		key := strings.ToLower(c.Name)
		if _, dup := t.byName[key]; dup {
			return nil, fmt.Errorf("schema: table %s: duplicate column %q", name, c.Name)
		}
		t.byName[key] = i
	}
	return t, nil
}

// MustTable is NewTable that panics on error; for use in tests and
// deterministic dataset construction.
func MustTable(name string, cols ...Column) *Table {
	t, err := NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// ColumnIndex returns the position of the named column (case-insensitive),
// or -1 when absent.
func (t *Table) ColumnIndex(name string) int {
	if t.byName == nil {
		t.rebuildIndex()
	}
	if i, ok := t.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Column returns the column with the given name.
func (t *Table) Column(name string) (Column, bool) {
	i := t.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return t.Columns[i], true
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

// Arity returns the number of columns.
func (t *Table) Arity() int { return len(t.Columns) }

func (t *Table) rebuildIndex() {
	t.byName = make(map[string]int, len(t.Columns))
	for i, c := range t.Columns {
		t.byName[strings.ToLower(c.Name)] = i
	}
}

// Schema is the full database schema: tables plus foreign-key edges.
type Schema struct {
	tables      map[string]*Table
	order       []string // table names in registration order
	foreignKeys []ForeignKey
}

// New returns an empty schema.
func New() *Schema {
	return &Schema{tables: make(map[string]*Table)}
}

// AddTable registers a table. Table names are case-insensitive and must be
// unique.
func (s *Schema) AddTable(t *Table) error {
	if t == nil {
		return fmt.Errorf("schema: nil table")
	}
	key := strings.ToLower(t.Name)
	if _, dup := s.tables[key]; dup {
		return fmt.Errorf("schema: duplicate table %q", t.Name)
	}
	s.tables[key] = t
	s.order = append(s.order, t.Name)
	return nil
}

// Table looks up a table by name (case-insensitive).
func (s *Schema) Table(name string) (*Table, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns the registered tables in registration order.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.tables[strings.ToLower(name)])
	}
	return out
}

// TableNames returns table names in registration order.
func (s *Schema) TableNames() []string {
	return append([]string(nil), s.order...)
}

// NumTables returns the number of registered tables.
func (s *Schema) NumTables() int { return len(s.order) }

// Resolve validates a column reference against the schema and returns the
// canonical casing of the table and column names.
func (s *Schema) Resolve(ref ColumnRef) (ColumnRef, error) {
	t, ok := s.Table(ref.Table)
	if !ok {
		return ColumnRef{}, fmt.Errorf("schema: unknown table %q", ref.Table)
	}
	i := t.ColumnIndex(ref.Column)
	if i < 0 {
		return ColumnRef{}, fmt.Errorf("schema: unknown column %q in table %q", ref.Column, ref.Table)
	}
	return ColumnRef{Table: t.Name, Column: t.Columns[i].Name}, nil
}

// AddForeignKey registers a join edge after validating both endpoints.
func (s *Schema) AddForeignKey(fk ForeignKey) error {
	from, err := s.Resolve(fk.From)
	if err != nil {
		return fmt.Errorf("schema: foreign key %s: %w", fk, err)
	}
	to, err := s.Resolve(fk.To)
	if err != nil {
		return fmt.Errorf("schema: foreign key %s: %w", fk, err)
	}
	if strings.EqualFold(from.Table, to.Table) {
		return fmt.Errorf("schema: self-referencing foreign key %s not supported", fk)
	}
	s.foreignKeys = append(s.foreignKeys, ForeignKey{From: from, To: to})
	return nil
}

// ForeignKeys returns the registered join edges.
func (s *Schema) ForeignKeys() []ForeignKey {
	return append([]ForeignKey(nil), s.foreignKeys...)
}

// EdgesOf returns every foreign key incident to the named table.
func (s *Schema) EdgesOf(table string) []ForeignKey {
	var out []ForeignKey
	for _, fk := range s.foreignKeys {
		if strings.EqualFold(fk.From.Table, table) || strings.EqualFold(fk.To.Table, table) {
			out = append(out, fk)
		}
	}
	return out
}

// AllColumns returns every column reference in the schema, sorted.
func (s *Schema) AllColumns() []ColumnRef {
	var out []ColumnRef
	for _, t := range s.Tables() {
		for _, c := range t.Columns {
			out = append(out, ColumnRef{Table: t.Name, Column: c.Name})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// String renders a compact textual description of the schema, one table per
// line plus the foreign keys. Useful for debugging and golden tests.
func (s *Schema) String() string {
	var b strings.Builder
	for _, t := range s.Tables() {
		b.WriteString(t.Name)
		b.WriteByte('(')
		for i, c := range t.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name)
			b.WriteByte(' ')
			b.WriteString(c.Type.String())
		}
		b.WriteString(")\n")
	}
	for _, fk := range s.foreignKeys {
		b.WriteString("  FK ")
		b.WriteString(fk.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Stats holds the column metadata Prism collects during preprocessing and
// checks low-resolution metadata constraints against: declared type, value
// range, maximum text length, row/null/distinct counts.
type Stats struct {
	Ref       ColumnRef
	Type      value.Kind
	Min       value.Value // NULL when the column has no non-null values
	Max       value.Value
	MaxLength int // maximum rendered text length in runes
	RowCount  int
	NullCount int
	Distinct  int
}

// NonNullCount returns the number of non-null entries.
func (st Stats) NonNullCount() int { return st.RowCount - st.NullCount }

// NullFraction returns the fraction of NULL entries (0 for empty columns).
func (st Stats) NullFraction() float64 {
	if st.RowCount == 0 {
		return 0
	}
	return float64(st.NullCount) / float64(st.RowCount)
}

// String renders the stats compactly.
func (st Stats) String() string {
	return fmt.Sprintf("%s type=%s min=%s max=%s maxlen=%d rows=%d nulls=%d distinct=%d",
		st.Ref, st.Type, st.Min, st.Max, st.MaxLength, st.RowCount, st.NullCount, st.Distinct)
}

// StatsCollector incrementally accumulates Stats for one column.
type StatsCollector struct {
	st   Stats
	seen map[string]struct{}
}

// NewStatsCollector creates a collector for the given column.
func NewStatsCollector(ref ColumnRef, typ value.Kind) *StatsCollector {
	return &StatsCollector{
		st:   Stats{Ref: ref, Type: typ, Min: value.NullValue, Max: value.NullValue},
		seen: make(map[string]struct{}),
	}
}

// Add accumulates one cell value.
func (c *StatsCollector) Add(v value.Value) {
	c.st.RowCount++
	if v.IsNull() {
		c.st.NullCount++
		return
	}
	if _, dup := c.seen[v.Key()]; !dup {
		c.seen[v.Key()] = struct{}{}
		c.st.Distinct++
	}
	if l := v.TextLength(); l > c.st.MaxLength {
		c.st.MaxLength = l
	}
	if c.st.Min.IsNull() || v.Less(c.st.Min) {
		c.st.Min = v
	}
	if c.st.Max.IsNull() || c.st.Max.Less(v) {
		c.st.Max = v
	}
}

// Stats returns the accumulated statistics.
func (c *StatsCollector) Stats() Stats { return c.st }
