package schema

import (
	"strings"
	"testing"
	"testing/quick"

	"prism/internal/value"
)

func lakeTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable("Lake",
		Column{Name: "Name", Type: value.Text},
		Column{Name: "Area", Type: value.Decimal},
		Column{Name: "Depth", Type: value.Decimal},
	)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(""); err == nil {
		t.Error("empty table name should fail")
	}
	if _, err := NewTable("T", Column{Name: ""}); err == nil {
		t.Error("empty column name should fail")
	}
	if _, err := NewTable("T", Column{Name: "a"}, Column{Name: "A"}); err == nil {
		t.Error("case-insensitive duplicate column should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable should panic on error")
		}
	}()
	MustTable("T", Column{Name: "x"}, Column{Name: "x"})
}

func TestTableLookups(t *testing.T) {
	tab := lakeTable(t)
	if tab.Arity() != 3 {
		t.Errorf("Arity = %d", tab.Arity())
	}
	if i := tab.ColumnIndex("area"); i != 1 {
		t.Errorf("ColumnIndex(area) = %d", i)
	}
	if i := tab.ColumnIndex("missing"); i != -1 {
		t.Errorf("ColumnIndex(missing) = %d", i)
	}
	c, ok := tab.Column("NAME")
	if !ok || c.Name != "Name" || c.Type != value.Text {
		t.Errorf("Column(NAME) = %+v %v", c, ok)
	}
	if _, ok := tab.Column("nope"); ok {
		t.Error("Column(nope) should be absent")
	}
	names := tab.ColumnNames()
	if len(names) != 3 || names[0] != "Name" || names[2] != "Depth" {
		t.Errorf("ColumnNames = %v", names)
	}
}

func TestTableIndexRebuild(t *testing.T) {
	// A Table constructed by literal (no byName map) should still resolve.
	tab := &Table{Name: "X", Columns: []Column{{Name: "A"}, {Name: "B"}}}
	if tab.ColumnIndex("b") != 1 {
		t.Error("literal-constructed table should lazily index columns")
	}
}

func TestColumnRef(t *testing.T) {
	r := ColumnRef{Table: "Lake", Column: "Name"}
	if r.String() != "Lake.Name" {
		t.Errorf("String = %q", r.String())
	}
	if !r.Less(ColumnRef{Table: "Lake", Column: "Z"}) {
		t.Error("Less by column")
	}
	if !r.Less(ColumnRef{Table: "M", Column: "A"}) {
		t.Error("Less by table")
	}
	if r.Less(r) {
		t.Error("not less than itself")
	}
}

func buildMiniSchema(t *testing.T) *Schema {
	t.Helper()
	s := New()
	if err := s.AddTable(lakeTable(t)); err != nil {
		t.Fatal(err)
	}
	geo := MustTable("geo_lake",
		Column{Name: "Lake", Type: value.Text},
		Column{Name: "Province", Type: value.Text},
		Column{Name: "Country", Type: value.Text},
	)
	if err := s.AddTable(geo); err != nil {
		t.Fatal(err)
	}
	prov := MustTable("Province",
		Column{Name: "Name", Type: value.Text},
		Column{Name: "Country", Type: value.Text},
		Column{Name: "Population", Type: value.Int},
	)
	if err := s.AddTable(prov); err != nil {
		t.Fatal(err)
	}
	if err := s.AddForeignKey(ForeignKey{
		From: ColumnRef{Table: "geo_lake", Column: "Lake"},
		To:   ColumnRef{Table: "Lake", Column: "Name"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddForeignKey(ForeignKey{
		From: ColumnRef{Table: "geo_lake", Column: "Province"},
		To:   ColumnRef{Table: "Province", Column: "Name"},
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaTables(t *testing.T) {
	s := buildMiniSchema(t)
	if s.NumTables() != 3 {
		t.Errorf("NumTables = %d", s.NumTables())
	}
	if _, ok := s.Table("LAKE"); !ok {
		t.Error("case-insensitive table lookup failed")
	}
	if _, ok := s.Table("nope"); ok {
		t.Error("unknown table should be absent")
	}
	names := s.TableNames()
	if len(names) != 3 || names[0] != "Lake" || names[1] != "geo_lake" {
		t.Errorf("TableNames = %v", names)
	}
	if got := len(s.Tables()); got != 3 {
		t.Errorf("Tables() len = %d", got)
	}
	if err := s.AddTable(lakeTable(t)); err == nil {
		t.Error("duplicate table should fail")
	}
	if err := s.AddTable(nil); err == nil {
		t.Error("nil table should fail")
	}
}

func TestSchemaResolve(t *testing.T) {
	s := buildMiniSchema(t)
	ref, err := s.Resolve(ColumnRef{Table: "lake", Column: "area"})
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if ref.Table != "Lake" || ref.Column != "Area" {
		t.Errorf("Resolve canonicalisation = %v", ref)
	}
	if _, err := s.Resolve(ColumnRef{Table: "nope", Column: "x"}); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := s.Resolve(ColumnRef{Table: "Lake", Column: "nope"}); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestForeignKeys(t *testing.T) {
	s := buildMiniSchema(t)
	fks := s.ForeignKeys()
	if len(fks) != 2 {
		t.Fatalf("ForeignKeys len = %d", len(fks))
	}
	if fks[0].String() != "geo_lake.Lake -> Lake.Name" {
		t.Errorf("fk string = %q", fks[0].String())
	}
	if err := s.AddForeignKey(ForeignKey{
		From: ColumnRef{Table: "Lake", Column: "Name"},
		To:   ColumnRef{Table: "Lake", Column: "Area"},
	}); err == nil {
		t.Error("self-referencing FK should be rejected")
	}
	if err := s.AddForeignKey(ForeignKey{
		From: ColumnRef{Table: "missing", Column: "x"},
		To:   ColumnRef{Table: "Lake", Column: "Name"},
	}); err == nil {
		t.Error("FK with unknown endpoint should fail")
	}
	edges := s.EdgesOf("Lake")
	if len(edges) != 1 {
		t.Errorf("EdgesOf(Lake) = %v", edges)
	}
	edges = s.EdgesOf("geo_lake")
	if len(edges) != 2 {
		t.Errorf("EdgesOf(geo_lake) = %v", edges)
	}
	if len(s.EdgesOf("Province")) != 1 {
		t.Error("EdgesOf(Province) should have 1 edge")
	}
}

func TestAllColumnsSorted(t *testing.T) {
	s := buildMiniSchema(t)
	cols := s.AllColumns()
	if len(cols) != 9 {
		t.Fatalf("AllColumns len = %d", len(cols))
	}
	for i := 1; i < len(cols); i++ {
		if cols[i].Less(cols[i-1]) {
			t.Errorf("AllColumns not sorted at %d: %v after %v", i, cols[i], cols[i-1])
		}
	}
}

func TestSchemaString(t *testing.T) {
	s := buildMiniSchema(t)
	str := s.String()
	if !strings.Contains(str, "Lake(Name text, Area decimal, Depth decimal)") {
		t.Errorf("schema string missing Lake table:\n%s", str)
	}
	if !strings.Contains(str, "FK geo_lake.Lake -> Lake.Name") {
		t.Errorf("schema string missing FK:\n%s", str)
	}
}

func TestStatsCollector(t *testing.T) {
	ref := ColumnRef{Table: "Lake", Column: "Area"}
	c := NewStatsCollector(ref, value.Decimal)
	for _, v := range []value.Value{
		value.NewDecimal(497),
		value.NewDecimal(53.2),
		value.NullValue,
		value.NewDecimal(981),
		value.NewDecimal(497), // duplicate
	} {
		c.Add(v)
	}
	st := c.Stats()
	if st.RowCount != 5 || st.NullCount != 1 || st.Distinct != 3 {
		t.Errorf("counts: %+v", st)
	}
	if st.NonNullCount() != 4 {
		t.Errorf("NonNullCount = %d", st.NonNullCount())
	}
	if st.Min.Decimal() != 53.2 || st.Max.Decimal() != 981 {
		t.Errorf("min/max: %v / %v", st.Min, st.Max)
	}
	if st.MaxLength != 4 { // "53.2" and "497" -> 4
		t.Errorf("MaxLength = %d", st.MaxLength)
	}
	if st.NullFraction() != 0.2 {
		t.Errorf("NullFraction = %v", st.NullFraction())
	}
	if !strings.Contains(st.String(), "Lake.Area") {
		t.Errorf("Stats.String() = %q", st.String())
	}
}

func TestStatsEmptyColumn(t *testing.T) {
	c := NewStatsCollector(ColumnRef{Table: "T", Column: "C"}, value.Int)
	st := c.Stats()
	if st.RowCount != 0 || !st.Min.IsNull() || !st.Max.IsNull() {
		t.Errorf("empty stats: %+v", st)
	}
	if st.NullFraction() != 0 {
		t.Errorf("NullFraction of empty column should be 0")
	}
}

// Property: after adding any sequence of ints, Min <= Max and Distinct <=
// NonNullCount and MaxLength equals the longest rendering.
func TestStatsProperties(t *testing.T) {
	f := func(vals []int16) bool {
		c := NewStatsCollector(ColumnRef{Table: "T", Column: "C"}, value.Int)
		maxLen := 0
		for _, x := range vals {
			v := value.NewInt(int64(x))
			if l := v.TextLength(); l > maxLen {
				maxLen = l
			}
			c.Add(v)
		}
		st := c.Stats()
		if len(vals) == 0 {
			return st.RowCount == 0
		}
		if st.Min.Compare(st.Max) > 0 {
			return false
		}
		if st.Distinct > st.NonNullCount() {
			return false
		}
		return st.MaxLength == maxLen && st.RowCount == len(vals) && st.NullCount == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkStatsCollector(b *testing.B) {
	ref := ColumnRef{Table: "T", Column: "C"}
	vals := make([]value.Value, 1000)
	for i := range vals {
		vals[i] = value.NewInt(int64(i % 117))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := NewStatsCollector(ref, value.Int)
		for _, v := range vals {
			c.Add(v)
		}
		_ = c.Stats()
	}
}
