package constraint

import (
	"strings"
	"testing"

	"prism/internal/lang"
	"prism/internal/schema"
	"prism/internal/value"
)

// paperSpec builds the §3 demo specification: 3 target columns, one sample
// ("California || Nevada", "Lake Tahoe", missing) and a metadata constraint
// on the third column.
func paperSpec(t *testing.T) *Spec {
	t.Helper()
	sp, err := ParseGrid(3,
		[][]string{{"California || Nevada", "Lake Tahoe", ""}},
		[]string{"", "", "DataType=='decimal' AND MinValue>='0'"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestParseGridPaperExample(t *testing.T) {
	sp := paperSpec(t)
	if sp.NumColumns != 3 || len(sp.Samples) != 1 {
		t.Fatalf("spec = %+v", sp)
	}
	if sp.Metadata[2] == nil || sp.Metadata[0] != nil {
		t.Error("metadata placement wrong")
	}
	if !sp.ColumnConstrained(0) || !sp.ColumnConstrained(1) || !sp.ColumnConstrained(2) {
		t.Error("all three columns are constrained in the demo example")
	}
	if sp.ColumnConstrained(3) || sp.ColumnConstrained(-1) {
		t.Error("out-of-range columns are unconstrained")
	}
	if sp.Resolution() != lang.ResolutionMedium {
		t.Errorf("Resolution = %v", sp.Resolution())
	}
	str := sp.String()
	if !strings.Contains(str, "Lake Tahoe") || !strings.Contains(str, "metadata col 3") {
		t.Errorf("String():\n%s", str)
	}
}

func TestParseGridErrors(t *testing.T) {
	if _, err := ParseGrid(0, nil, nil); err == nil {
		t.Error("zero columns should fail")
	}
	if _, err := ParseGrid(2, [][]string{{"a"}}, nil); err == nil {
		t.Error("row arity mismatch should fail")
	}
	if _, err := ParseGrid(2, [][]string{{">=", "b"}}, nil); err == nil {
		t.Error("bad cell should fail")
	}
	if _, err := ParseGrid(2, [][]string{{"a", "b"}}, []string{"only-one"}); err == nil {
		t.Error("metadata arity mismatch should fail")
	}
	if _, err := ParseGrid(2, [][]string{{"a", "b"}}, []string{"Bogus == 1", ""}); err == nil {
		t.Error("bad metadata cell should fail")
	}
	if _, err := ParseGrid(2, [][]string{{"", ""}}, []string{"", ""}); err == nil {
		t.Error("fully empty specification should fail")
	}
	if _, err := ParseGrid(1, nil, nil); err == nil {
		t.Error("no samples and no metadata should fail")
	}
}

func TestNewSpecValidation(t *testing.T) {
	cells, _ := lang.ParseSampleRow([]string{"x", "y"})
	s := SampleConstraint{Cells: cells}
	if _, err := NewSpec(3, []SampleConstraint{s}, nil); err == nil {
		t.Error("sample arity mismatch should fail")
	}
	sp, err := NewSpec(2, []SampleConstraint{s}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Metadata) != 2 {
		t.Error("nil metadata should expand to one nil per column")
	}
	if _, err := NewSpec(2, []SampleConstraint{s}, make([]lang.MetaExpr, 3)); err == nil {
		t.Error("metadata arity mismatch should fail")
	}
}

func TestSampleConstraintMatching(t *testing.T) {
	sp := paperSpec(t)
	s := sp.Samples[0]
	if got := s.ConstrainedColumns(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ConstrainedColumns = %v", got)
	}
	if s.IsEmpty() {
		t.Error("sample is not empty")
	}
	good := value.Tuple{value.NewText("California"), value.NewText("Lake Tahoe"), value.NewDecimal(497)}
	if !s.MatchesTuple(good) {
		t.Error("paper tuple should match")
	}
	alsoGood := value.Tuple{value.NewText("Nevada"), value.NewText("lake tahoe"), value.NullValue}
	if !s.MatchesTuple(alsoGood) {
		t.Error("disjunction + case-insensitive match expected")
	}
	bad := value.Tuple{value.NewText("Oregon"), value.NewText("Lake Tahoe"), value.NewDecimal(497)}
	if s.MatchesTuple(bad) {
		t.Error("Oregon violates the first cell")
	}
	if s.MatchesTuple(good[:2]) {
		t.Error("short tuple should not match")
	}
	if s.Resolution() != lang.ResolutionMedium {
		t.Error("sample with disjunction is medium resolution")
	}
	if !strings.Contains(s.String(), "California || Nevada") {
		t.Errorf("String = %q", s)
	}
}

func TestSampleMatchesProjection(t *testing.T) {
	sp := paperSpec(t)
	s := sp.Samples[0]
	// Project only column 1 (Lake Name).
	if !s.MatchesProjection([]int{1}, value.Tuple{value.NewText("Lake Tahoe")}) {
		t.Error("projection on lake name should match")
	}
	if s.MatchesProjection([]int{1}, value.Tuple{value.NewText("Crater Lake")}) {
		t.Error("wrong lake should not match")
	}
	// Projection covering unconstrained column passes trivially.
	if !s.MatchesProjection([]int{2}, value.Tuple{value.NewDecimal(5)}) {
		t.Error("unconstrained column projection should match")
	}
	if s.MatchesProjection([]int{0, 1}, value.Tuple{value.NewText("California")}) {
		t.Error("length mismatch should not match")
	}
	if s.MatchesProjection([]int{7}, value.Tuple{value.NewText("x")}) {
		t.Error("out-of-range column index should not match")
	}
}

func TestEmptySampleResolution(t *testing.T) {
	s := SampleConstraint{Cells: make([]lang.ValueExpr, 3)}
	if !s.IsEmpty() || s.Resolution() != lang.ResolutionLow {
		t.Error("empty sample should be low resolution")
	}
}

func TestColumnKeywordsAndExprs(t *testing.T) {
	sp, err := ParseGrid(2,
		[][]string{
			{"California || Nevada", "Lake Tahoe"},
			{"California", ">= 100"},
		},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	kws := sp.ColumnKeywords(0)
	if len(kws) != 2 { // California deduplicated
		t.Errorf("ColumnKeywords(0) = %v", kws)
	}
	if len(sp.ColumnKeywords(1)) != 1 {
		t.Errorf("ColumnKeywords(1) = %v", sp.ColumnKeywords(1))
	}
	if len(sp.ColumnValueExprs(0)) != 2 || len(sp.ColumnValueExprs(1)) != 2 {
		t.Error("ColumnValueExprs counts wrong")
	}
	if sp.ColumnKeywords(5) != nil {
		t.Error("out-of-range column has no keywords")
	}
}

func TestSpecResolutionLevels(t *testing.T) {
	high, err := ParseGrid(2, [][]string{{"California", "Lake Tahoe"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if high.Resolution() != lang.ResolutionHigh {
		t.Error("exact cells are high resolution")
	}
	low, err := ParseGrid(1, nil, []string{"DataType == 'decimal'"})
	if err != nil {
		t.Fatal(err)
	}
	if low.Resolution() != lang.ResolutionLow {
		t.Error("metadata-only spec is low resolution")
	}
	if low.MissingCellFraction() != 1 {
		t.Error("no sample cells means fully missing")
	}
	med := paperSpec(t)
	if med.MissingCellFraction() <= 0.3 || med.MissingCellFraction() >= 0.4 {
		t.Errorf("MissingCellFraction = %v, want 1/3", med.MissingCellFraction())
	}
}

func stats(ref schema.ColumnRef, typ value.Kind, vals ...value.Value) schema.Stats {
	c := schema.NewStatsCollector(ref, typ)
	for _, v := range vals {
		c.Add(v)
	}
	return c.Stats()
}

func TestColumnFeasible(t *testing.T) {
	sp := paperSpec(t)
	provStats := stats(schema.ColumnRef{Table: "geo_lake", Column: "Province"}, value.Text,
		value.NewText("California"), value.NewText("Oregon"))
	nameStats := stats(schema.ColumnRef{Table: "Lake", Column: "Name"}, value.Text,
		value.NewText("Lake Tahoe"), value.NewText("Crater Lake"))
	areaStats := stats(schema.ColumnRef{Table: "Lake", Column: "Area"}, value.Decimal,
		value.NewDecimal(53.2), value.NewDecimal(497))
	negStats := stats(schema.ColumnRef{Table: "Geo", Column: "Elevation"}, value.Decimal,
		value.NewDecimal(-86), value.NewDecimal(400))
	hasProv := func(kw string) bool { return strings.EqualFold(kw, "California") }
	hasName := func(kw string) bool {
		return strings.EqualFold(kw, "Lake Tahoe") || strings.EqualFold(kw, "Crater Lake")
	}
	hasNone := func(string) bool { return false }

	if !sp.ColumnFeasible(0, provStats, hasProv) {
		t.Error("province column should be feasible for target column 0")
	}
	if sp.ColumnFeasible(0, nameStats, hasName) {
		t.Error("lake-name column lacks California/Nevada keywords")
	}
	if !sp.ColumnFeasible(1, nameStats, hasName) {
		t.Error("lake-name column should be feasible for target column 1")
	}
	if !sp.ColumnFeasible(2, areaStats, hasNone) {
		t.Error("area column satisfies the metadata constraint")
	}
	if sp.ColumnFeasible(2, negStats, hasNone) {
		t.Error("negative-min column violates MinValue >= 0")
	}
	if sp.ColumnFeasible(2, nameStats, hasNone) {
		t.Error("text column violates DataType == decimal")
	}
	if sp.ColumnFeasible(9, areaStats, hasNone) || sp.ColumnFeasible(-1, areaStats, hasNone) {
		t.Error("out-of-range target columns are infeasible")
	}
}

func TestColumnFeasibleMultipleSamples(t *testing.T) {
	// Two samples naming different provinces: a column containing only one
	// of them must still be feasible (different samples may bind different
	// rows, and the candidate is only pruned if no row can serve a sample —
	// which execution-time validation decides, not column feasibility).
	sp, err := ParseGrid(1, [][]string{{"California"}, {"Texas"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := stats(schema.ColumnRef{Table: "P", Column: "Name"}, value.Text, value.NewText("California"))
	has := func(kw string) bool { return strings.EqualFold(kw, "California") }
	if !sp.ColumnFeasible(0, st, has) {
		t.Error("column containing one of the sample keywords should remain feasible")
	}
}

func TestMatchesResult(t *testing.T) {
	sp, err := ParseGrid(2,
		[][]string{
			{"California || Nevada", "Lake Tahoe"},
			{"Oregon", "Crater Lake"},
		},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := []value.Tuple{
		{value.NewText("California"), value.NewText("Lake Tahoe")},
		{value.NewText("Oregon"), value.NewText("Crater Lake")},
		{value.NewText("Florida"), value.NewText("Fort Peck Lake")},
	}
	if !sp.MatchesResult(rows) {
		t.Error("result containing both samples should match")
	}
	if sp.MatchesResult(rows[:1]) {
		t.Error("missing second sample should not match")
	}
	if sp.MatchesResult(nil) {
		t.Error("empty result should not match")
	}
	// A spec whose samples are all empty matches anything.
	empty := &Spec{NumColumns: 1, Samples: []SampleConstraint{{Cells: make([]lang.ValueExpr, 1)}}, Metadata: make([]lang.MetaExpr, 1)}
	if !empty.MatchesResult(nil) {
		t.Error("spec with empty samples matches any result")
	}
}

func BenchmarkSpecMatchesResult(b *testing.B) {
	sp, err := ParseGrid(3,
		[][]string{{"California || Nevada", "Lake Tahoe", ">= 100"}},
		nil,
	)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]value.Tuple, 0, 1000)
	for i := 0; i < 1000; i++ {
		rows = append(rows, value.Tuple{
			value.NewText("Province-" + string(rune('a'+i%26))),
			value.NewText("Lake-" + string(rune('a'+i%26))),
			value.NewDecimal(float64(i)),
		})
	}
	rows = append(rows, value.Tuple{value.NewText("Nevada"), value.NewText("Lake Tahoe"), value.NewDecimal(497)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !sp.MatchesResult(rows) {
			b.Fatal("expected match")
		}
	}
}
