package constraint

import (
	"strings"
	"testing"
)

func TestDeltaApplyUpdateCell(t *testing.T) {
	sp := paperSpec(t)
	refined, err := Delta{UpdateCells: []CellUpdate{{Row: 0, Col: 2, Cell: "[400, 600]"}}}.Apply(sp)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Samples[0].Cells[2] == nil {
		t.Fatal("cell (0,2) should now be constrained")
	}
	if sp.Samples[0].Cells[2] != nil {
		t.Fatal("the original specification must not be modified")
	}
	if refined.Samples[0].Cells[0].String() != sp.Samples[0].Cells[0].String() {
		t.Error("untouched cells must be preserved")
	}

	// Clearing a cell with "" makes it unconstrained again.
	cleared, err := Delta{UpdateCells: []CellUpdate{{Row: 0, Col: 2, Cell: ""}}}.Apply(refined)
	if err != nil {
		t.Fatal(err)
	}
	if cleared.Samples[0].Cells[2] != nil {
		t.Error("empty cell should clear the constraint")
	}
}

func TestDeltaApplyAddRemoveRows(t *testing.T) {
	sp := paperSpec(t)
	grown, err := Delta{AddSamples: [][]string{{"Oregon", "Crater Lake", ""}}}.Apply(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(grown.Samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(grown.Samples))
	}
	shrunk, err := Delta{RemoveSamples: []int{0}}.Apply(grown)
	if err != nil {
		t.Fatal(err)
	}
	if len(shrunk.Samples) != 1 || !strings.Contains(shrunk.Samples[0].String(), "Oregon") {
		t.Fatalf("wrong row removed: %v", shrunk.Samples)
	}
}

func TestDeltaApplyMetadata(t *testing.T) {
	sp := paperSpec(t)
	refined, err := Delta{SetMetadata: []MetadataUpdate{{Col: 2, Cell: "DataType=='int'"}}}.Apply(sp)
	if err != nil {
		t.Fatal(err)
	}
	if refined.Metadata[2] == nil || !strings.Contains(refined.Metadata[2].String(), "int") {
		t.Errorf("metadata not updated: %v", refined.Metadata[2])
	}
	if !strings.Contains(sp.Metadata[2].String(), "decimal") {
		t.Error("original metadata must be preserved")
	}
}

func TestDeltaApplyErrors(t *testing.T) {
	sp := paperSpec(t)
	cases := []struct {
		name  string
		delta Delta
	}{
		{"row out of range", Delta{UpdateCells: []CellUpdate{{Row: 5, Col: 0, Cell: "x"}}}},
		{"col out of range", Delta{UpdateCells: []CellUpdate{{Row: 0, Col: 9, Cell: "x"}}}},
		{"bad cell syntax", Delta{UpdateCells: []CellUpdate{{Row: 0, Col: 0, Cell: ">="}}}},
		{"bad metadata", Delta{SetMetadata: []MetadataUpdate{{Col: 0, Cell: "NoSuchField=='x'"}}}},
		{"remove out of range", Delta{RemoveSamples: []int{3}}},
		{"added row arity", Delta{AddSamples: [][]string{{"just-one-cell"}}}},
		{"empties the spec", Delta{
			RemoveSamples: []int{0},
			SetMetadata:   []MetadataUpdate{{Col: 2, Cell: ""}},
		}},
	}
	for _, tc := range cases {
		if _, err := tc.delta.Apply(sp); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
	if _, err := (Delta{}).Apply(nil); err == nil {
		t.Error("nil spec should be rejected")
	}
}

func TestDeltaOrderOfOperations(t *testing.T) {
	// Updates and removals address pre-delta rows; the added row is appended
	// afterwards and is not reachable by UpdateCells in the same delta.
	sp := paperSpec(t)
	refined, err := Delta{
		UpdateCells:   []CellUpdate{{Row: 0, Col: 1, Cell: "Mono Lake"}},
		RemoveSamples: []int{0},
		AddSamples:    [][]string{{"Utah", "Great Salt Lake", ""}},
	}.Apply(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(refined.Samples) != 1 || !strings.Contains(refined.Samples[0].String(), "Great Salt Lake") {
		t.Fatalf("unexpected rows: %v", refined.Samples)
	}
}

func TestDeltaStringAndIsZero(t *testing.T) {
	if !(Delta{}).IsZero() {
		t.Error("zero delta should report IsZero")
	}
	d := Delta{UpdateCells: []CellUpdate{{Row: 0, Col: 1, Cell: "x"}}, RemoveSamples: []int{2, 1}}
	if d.IsZero() {
		t.Error("non-empty delta reported IsZero")
	}
	if s := d.String(); !strings.Contains(s, "update:1") || !strings.Contains(s, "[1 2]") {
		t.Errorf("String() = %q", s)
	}
}
