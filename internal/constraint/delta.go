// Refinement deltas: the unit of change of an interactive session. The
// CIDR demo's workflow is iterative — the user adjusts a few cells of the
// Description grids and hits "Start Searching!" again — so a Delta names
// exactly the cells that changed and Apply produces the refined Spec,
// leaving the original untouched. Filters whose covered cells are not
// named by the delta keep their validation cache keys, which is what lets
// a session round reuse the previous rounds' outcomes.
package constraint

import (
	"fmt"
	"sort"

	"prism/internal/lang"
)

// CellUpdate rewrites one cell of the sample-constraint grid. Row and Col
// are zero-based; Cell is the new constraint in the multiresolution
// language ("" clears the cell to unconstrained).
type CellUpdate struct {
	Row  int
	Col  int
	Cell string
}

// MetadataUpdate rewrites one cell of the metadata-constraint row. Col is
// zero-based; Cell is the new metadata constraint ("" clears it).
type MetadataUpdate struct {
	Col  int
	Cell string
}

// Delta is one refinement step over a specification. Operations apply in
// the order: UpdateCells, SetMetadata, RemoveSamples, AddSamples — so row
// indexes in UpdateCells and RemoveSamples always refer to the rows of the
// specification being refined, never to rows the same delta adds.
type Delta struct {
	// UpdateCells rewrites individual sample cells in place.
	UpdateCells []CellUpdate
	// SetMetadata rewrites metadata cells.
	SetMetadata []MetadataUpdate
	// RemoveSamples drops whole sample rows by index (zero-based, against
	// the pre-delta specification).
	RemoveSamples []int
	// AddSamples appends new sample rows, each with exactly NumColumns
	// cells in the multiresolution language.
	AddSamples [][]string
}

// IsZero reports whether the delta carries no operations at all.
func (d Delta) IsZero() bool {
	return len(d.UpdateCells) == 0 && len(d.SetMetadata) == 0 &&
		len(d.RemoveSamples) == 0 && len(d.AddSamples) == 0
}

// Apply produces the refined specification; sp is not modified. The result
// is validated like any parsed specification (it must keep at least one
// constraint).
func (d Delta) Apply(sp *Spec) (*Spec, error) {
	if sp == nil {
		return nil, fmt.Errorf("constraint: delta applied to nil specification")
	}
	// Copy-on-write: rows are cloned the first time one of their cells is
	// rewritten; untouched rows share their cell slices with the original.
	samples := append([]SampleConstraint(nil), sp.Samples...)
	metadata := append([]lang.MetaExpr(nil), sp.Metadata...)
	cloned := make([]bool, len(samples))
	cloneRow := func(row int) {
		if !cloned[row] {
			samples[row] = SampleConstraint{Cells: append([]lang.ValueExpr(nil), samples[row].Cells...)}
			cloned[row] = true
		}
	}

	for _, u := range d.UpdateCells {
		if u.Row < 0 || u.Row >= len(samples) {
			return nil, fmt.Errorf("constraint: delta updates sample row %d, have %d rows", u.Row, len(samples))
		}
		if u.Col < 0 || u.Col >= sp.NumColumns {
			return nil, fmt.Errorf("constraint: delta updates column %d, target schema has %d columns", u.Col, sp.NumColumns)
		}
		expr, err := parseOptionalCell(u.Cell)
		if err != nil {
			return nil, fmt.Errorf("constraint: delta cell (%d, %d): %w", u.Row, u.Col, err)
		}
		cloneRow(u.Row)
		samples[u.Row].Cells[u.Col] = expr
	}

	for _, m := range d.SetMetadata {
		if m.Col < 0 || m.Col >= sp.NumColumns {
			return nil, fmt.Errorf("constraint: delta sets metadata column %d, target schema has %d columns", m.Col, sp.NumColumns)
		}
		expr, err := parseOptionalMeta(m.Cell)
		if err != nil {
			return nil, fmt.Errorf("constraint: delta metadata column %d: %w", m.Col, err)
		}
		metadata[m.Col] = expr
	}

	if len(d.RemoveSamples) > 0 {
		drop := make(map[int]struct{}, len(d.RemoveSamples))
		for _, row := range d.RemoveSamples {
			if row < 0 || row >= len(samples) {
				return nil, fmt.Errorf("constraint: delta removes sample row %d, have %d rows", row, len(samples))
			}
			drop[row] = struct{}{}
		}
		kept := samples[:0:0]
		for i, s := range samples {
			if _, gone := drop[i]; !gone {
				kept = append(kept, s)
			}
		}
		samples = kept
	}

	for i, row := range d.AddSamples {
		if len(row) != sp.NumColumns {
			return nil, fmt.Errorf("constraint: delta adds sample row with %d cells, want %d", len(row), sp.NumColumns)
		}
		cells, err := lang.ParseSampleRow(row)
		if err != nil {
			return nil, fmt.Errorf("constraint: delta added row %d: %w", i, err)
		}
		samples = append(samples, SampleConstraint{Cells: cells})
	}

	return NewSpec(sp.NumColumns, samples, metadata)
}

// String renders a compact description of the delta for logs and REPLs.
func (d Delta) String() string {
	if d.IsZero() {
		return "delta{}"
	}
	removed := append([]int(nil), d.RemoveSamples...)
	sort.Ints(removed)
	return fmt.Sprintf("delta{update:%d meta:%d remove:%v add:%d}",
		len(d.UpdateCells), len(d.SetMetadata), removed, len(d.AddSamples))
}

func parseOptionalCell(cell string) (lang.ValueExpr, error) {
	cells, err := lang.ParseSampleRow([]string{cell})
	if err != nil {
		return nil, err
	}
	return cells[0], nil
}

func parseOptionalMeta(cell string) (lang.MetaExpr, error) {
	row, err := lang.ParseMetadataRow([]string{cell})
	if err != nil {
		return nil, err
	}
	return row[0], nil
}
