// Package constraint assembles the user's multiresolution constraints into
// the target-schema specification Prism's query discovery consumes: the
// Configuration (number of target columns, number of sample constraints),
// the row-level result constraints, and the column-level metadata
// constraints of the Description section (§2.2).
package constraint

import (
	"fmt"
	"strings"

	"prism/internal/lang"
	"prism/internal/schema"
	"prism/internal/value"
)

// SampleConstraint is one row of the sample-constraint grid: one value
// constraint per target column (nil entries are unconstrained / missing
// cells). A schema mapping query satisfies the sample constraint if its
// result contains at least one tuple satisfying every non-nil cell.
type SampleConstraint struct {
	Cells []lang.ValueExpr
}

// Arity returns the number of target columns the sample spans.
func (s SampleConstraint) Arity() int { return len(s.Cells) }

// ConstrainedColumns returns the indexes of cells carrying a constraint.
func (s SampleConstraint) ConstrainedColumns() []int {
	var out []int
	for i, c := range s.Cells {
		if c != nil {
			out = append(out, i)
		}
	}
	return out
}

// IsEmpty reports whether the sample carries no constraints at all.
func (s SampleConstraint) IsEmpty() bool { return len(s.ConstrainedColumns()) == 0 }

// MatchesTuple reports whether the tuple (in target-column order) satisfies
// every constrained cell of the sample.
func (s SampleConstraint) MatchesTuple(t value.Tuple) bool {
	if len(t) < len(s.Cells) {
		return false
	}
	for i, c := range s.Cells {
		if c == nil {
			continue
		}
		if !c.Eval(t[i]) {
			return false
		}
	}
	return true
}

// MatchesProjection reports whether the partial tuple covering only the
// target columns listed in cols satisfies the corresponding cells. This is
// the satisfaction test for filters, which project a subset of the target
// columns.
func (s SampleConstraint) MatchesProjection(cols []int, t value.Tuple) bool {
	if len(cols) != len(t) {
		return false
	}
	for i, col := range cols {
		if col < 0 || col >= len(s.Cells) {
			return false
		}
		c := s.Cells[col]
		if c == nil {
			continue
		}
		if !c.Eval(t[i]) {
			return false
		}
	}
	return true
}

// Resolution returns the coarsest resolution across the constrained cells:
// a sample with any disjunction/range cell is medium resolution even if the
// other cells are exact.
func (s SampleConstraint) Resolution() lang.Resolution {
	res := lang.ResolutionHigh
	constrained := false
	for _, c := range s.Cells {
		if c == nil {
			continue
		}
		constrained = true
		if c.Resolution() == lang.ResolutionMedium {
			res = lang.ResolutionMedium
		}
	}
	if !constrained {
		return lang.ResolutionLow
	}
	return res
}

// String renders the sample row in grid syntax ("cell | cell | cell").
func (s SampleConstraint) String() string {
	parts := make([]string, len(s.Cells))
	for i, c := range s.Cells {
		if c == nil {
			parts[i] = ""
			continue
		}
		parts[i] = c.String()
	}
	return strings.Join(parts, " | ")
}

// Spec is the full multiresolution constraint set Q for one schema mapping
// task.
type Spec struct {
	// NumColumns is the number of columns of the target schema.
	NumColumns int
	// Samples are the result constraints (one per sample row).
	Samples []SampleConstraint
	// Metadata holds one optional metadata constraint per target column
	// (nil = unconstrained).
	Metadata []lang.MetaExpr
}

// NewSpec validates and assembles a specification.
func NewSpec(numColumns int, samples []SampleConstraint, metadata []lang.MetaExpr) (*Spec, error) {
	if numColumns <= 0 {
		return nil, fmt.Errorf("constraint: target schema must have at least one column, got %d", numColumns)
	}
	for i, s := range samples {
		if s.Arity() != numColumns {
			return nil, fmt.Errorf("constraint: sample %d has %d cells, want %d", i, s.Arity(), numColumns)
		}
	}
	if metadata == nil {
		metadata = make([]lang.MetaExpr, numColumns)
	}
	if len(metadata) != numColumns {
		return nil, fmt.Errorf("constraint: metadata row has %d cells, want %d", len(metadata), numColumns)
	}
	sp := &Spec{NumColumns: numColumns, Samples: samples, Metadata: metadata}
	if err := sp.checkNonEmpty(); err != nil {
		return nil, err
	}
	return sp, nil
}

func (sp *Spec) checkNonEmpty() error {
	for col := 0; col < sp.NumColumns; col++ {
		if sp.ColumnConstrained(col) {
			return nil
		}
	}
	return fmt.Errorf("constraint: specification carries no constraints at all")
}

// ParseGrid builds a Spec directly from the Description-section grids: raw
// sample rows (each with numColumns cells) and an optional metadata row.
func ParseGrid(numColumns int, sampleRows [][]string, metadataRow []string) (*Spec, error) {
	samples := make([]SampleConstraint, 0, len(sampleRows))
	for i, row := range sampleRows {
		if len(row) != numColumns {
			return nil, fmt.Errorf("constraint: sample row %d has %d cells, want %d", i, len(row), numColumns)
		}
		cells, err := lang.ParseSampleRow(row)
		if err != nil {
			return nil, fmt.Errorf("constraint: sample row %d: %w", i, err)
		}
		samples = append(samples, SampleConstraint{Cells: cells})
	}
	var metadata []lang.MetaExpr
	if metadataRow != nil {
		if len(metadataRow) != numColumns {
			return nil, fmt.Errorf("constraint: metadata row has %d cells, want %d", len(metadataRow), numColumns)
		}
		var err error
		metadata, err = lang.ParseMetadataRow(metadataRow)
		if err != nil {
			return nil, fmt.Errorf("constraint: metadata row: %w", err)
		}
	}
	return NewSpec(numColumns, samples, metadata)
}

// ColumnConstrained reports whether target column col carries any value or
// metadata constraint.
func (sp *Spec) ColumnConstrained(col int) bool {
	if col < 0 || col >= sp.NumColumns {
		return false
	}
	if sp.Metadata[col] != nil {
		return true
	}
	for _, s := range sp.Samples {
		if col < len(s.Cells) && s.Cells[col] != nil {
			return true
		}
	}
	return false
}

// ColumnValueExprs returns the value constraints appearing in column col
// across all samples.
func (sp *Spec) ColumnValueExprs(col int) []lang.ValueExpr {
	var out []lang.ValueExpr
	for _, s := range sp.Samples {
		if col < len(s.Cells) && s.Cells[col] != nil {
			out = append(out, s.Cells[col])
		}
	}
	return out
}

// ColumnKeywords returns every exact keyword mentioned for target column
// col, across all samples; related-column search probes the inverted index
// with these.
func (sp *Spec) ColumnKeywords(col int) []string {
	var out []string
	seen := make(map[string]struct{})
	for _, e := range sp.ColumnValueExprs(col) {
		for _, kw := range lang.Keywords(e) {
			k := strings.ToLower(kw)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, kw)
		}
	}
	return out
}

// Resolution classifies the whole specification: high if every constrained
// sample cell is exact, low if only metadata constraints are present,
// medium otherwise.
func (sp *Spec) Resolution() lang.Resolution {
	hasSample := false
	res := lang.ResolutionHigh
	for _, s := range sp.Samples {
		for _, c := range s.Cells {
			if c == nil {
				continue
			}
			hasSample = true
			if c.Resolution() == lang.ResolutionMedium {
				res = lang.ResolutionMedium
			}
		}
	}
	if !hasSample {
		return lang.ResolutionLow
	}
	return res
}

// MissingCellFraction returns the fraction of sample cells that carry no
// constraint; the paper's evaluation calls these "missing values".
func (sp *Spec) MissingCellFraction() float64 {
	total := 0
	missing := 0
	for _, s := range sp.Samples {
		for _, c := range s.Cells {
			total++
			if c == nil {
				missing++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(missing) / float64(total)
}

// ColumnFeasible reports whether a source column with the given statistics
// could be mapped to target column col: it must satisfy the column's
// metadata constraint (if any) and at least one of the column's value
// constraints must be feasible (when value constraints exist).
//
// hasKeyword answers whether the source column contains an exact keyword.
func (sp *Spec) ColumnFeasible(col int, st schema.Stats, hasKeyword func(string) bool) bool {
	if col < 0 || col >= sp.NumColumns {
		return false
	}
	if m := sp.Metadata[col]; m != nil && !m.Eval(st) {
		return false
	}
	exprs := sp.ColumnValueExprs(col)
	if len(exprs) == 0 {
		// Metadata-only (or fully unconstrained) column: any column passing
		// the metadata check is a candidate.
		return true
	}
	// At least one sample must be satisfiable from this column. Different
	// samples may be served by different rows, so feasibility of any sample
	// cell suffices; requiring all would wrongly prune.
	for _, e := range exprs {
		if lang.ColumnFeasible(e, st, hasKeyword) {
			return true
		}
	}
	return false
}

// MatchesResult reports whether a full result set satisfies the
// specification: every sample constraint must be contained in (matched by)
// at least one result tuple. Metadata constraints are checked structurally
// during discovery, not against result data.
func (sp *Spec) MatchesResult(rows []value.Tuple) bool {
	for _, s := range sp.Samples {
		if s.IsEmpty() {
			continue
		}
		found := false
		for _, row := range rows {
			if s.MatchesTuple(row) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// String renders the specification for logs and explanations.
func (sp *Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "target columns: %d\n", sp.NumColumns)
	for i, s := range sp.Samples {
		fmt.Fprintf(&b, "sample %d: %s\n", i+1, s)
	}
	for i, m := range sp.Metadata {
		if m == nil {
			continue
		}
		fmt.Fprintf(&b, "metadata col %d: %s\n", i+1, m)
	}
	return b.String()
}
