package fault

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// Disarmed sites return nil and inject nothing.
func TestDisarmedHitIsNil(t *testing.T) {
	s := Register("test.disarmed")
	for i := 0; i < 100; i++ {
		if err := s.Hit(); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
}

// A disarmed hit must not allocate: fault points sit on paths guarded
// by 0 allocs/op benchmarks.
func TestDisarmedHitZeroAllocs(t *testing.T) {
	s := Register("test.zeroalloc")
	allocs := testing.AllocsPerRun(1000, func() {
		if err := s.Hit(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disarmed Hit allocates %v per op, want 0", allocs)
	}
}

// ModeError fires the configured error, default ErrInjected.
func TestArmError(t *testing.T) {
	s := Register("test.error")
	defer Disarm(s.Name())
	if err := Arm(s.Name(), Injection{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Hit(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
	custom := errors.New("boom")
	if err := Arm(s.Name(), Injection{Err: custom}); err != nil {
		t.Fatal(err)
	}
	if err := s.Hit(); !errors.Is(err, custom) {
		t.Fatalf("Hit = %v, want custom error", err)
	}
	Disarm(s.Name())
	if err := s.Hit(); err != nil {
		t.Fatalf("Hit after Disarm = %v, want nil", err)
	}
}

// Skip suppresses the first hits, Count caps the firings.
func TestSkipAndCount(t *testing.T) {
	s := Register("test.skipcount")
	defer Disarm(s.Name())
	if err := Arm(s.Name(), Injection{Skip: 2, Count: 3}); err != nil {
		t.Fatal(err)
	}
	var fired int
	for i := 0; i < 10; i++ {
		if s.Hit() != nil {
			fired++
			if i < 2 {
				t.Fatalf("hit %d fired inside Skip window", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3 (Count)", fired)
	}
	if f, _ := s.Fired(); f != 3 {
		t.Fatalf("Fired() = %d, want 3", f)
	}
}

// Prob with a fixed Seed yields the same firing pattern on every run.
func TestProbDeterministic(t *testing.T) {
	s := Register("test.prob")
	defer Disarm(s.Name())
	pattern := func() string {
		if err := Arm(s.Name(), Injection{Prob: 0.5, Seed: 42}); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if s.Hit() != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	p1, p2 := pattern(), pattern()
	if p1 != p2 {
		t.Fatalf("same seed, different patterns:\n%s\n%s", p1, p2)
	}
	if !strings.Contains(p1, "1") || !strings.Contains(p1, "0") {
		t.Fatalf("Prob=0.5 pattern degenerate: %s", p1)
	}
}

// ModePanic panics with a value naming the site.
func TestPanicMode(t *testing.T) {
	s := Register("test.panic")
	defer Disarm(s.Name())
	if err := Arm(s.Name(), Injection{Mode: ModePanic}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("armed ModePanic did not panic")
		}
		if !strings.Contains(r.(string), "test.panic") {
			t.Fatalf("panic value %q does not name the site", r)
		}
	}()
	_ = s.Hit()
}

// ModeDelay sleeps for the configured duration.
func TestDelayMode(t *testing.T) {
	s := Register("test.delay")
	defer Disarm(s.Name())
	if err := Arm(s.Name(), Injection{Mode: ModeDelay, Delay: 30 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Hit(); err != nil {
		t.Fatalf("ModeDelay Hit = %v, want nil", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("ModeDelay returned after %v, want >= ~30ms", d)
	}
}

// Writer truncates one write under ModeShortWrite and passes through
// otherwise.
func TestShortWrite(t *testing.T) {
	s := Register("test.shortwrite")
	defer Disarm(s.Name())
	var buf bytes.Buffer
	w := s.Writer(&buf)
	if n, err := w.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("disarmed write = (%d, %v)", n, err)
	}
	if err := Arm(s.Name(), Injection{Mode: ModeShortWrite, Count: 1}); err != nil {
		t.Fatal(err)
	}
	n, err := w.Write([]byte("world!"))
	if err == nil {
		t.Fatal("armed short write returned nil error")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write error %v does not wrap ErrInjected", err)
	}
	if n >= 6 {
		t.Fatalf("short write wrote %d of 6 bytes", n)
	}
	// Budget exhausted: next write passes through.
	if n, err := w.Write([]byte("again")); err != nil || n != 5 {
		t.Fatalf("post-budget write = (%d, %v)", n, err)
	}
	// Hit is a no-op under ModeShortWrite.
	if err := s.Hit(); err != nil {
		t.Fatalf("Hit under ModeShortWrite = %v, want nil", err)
	}
}

// Arm rejects unknown names; Disarm tolerates them.
func TestUnknownNames(t *testing.T) {
	if err := Arm("no.such.point", Injection{}); err == nil {
		t.Fatal("Arm of unknown point succeeded")
	}
	Disarm("no.such.point") // must not panic
	if Lookup("no.such.point") != nil {
		t.Fatal("Lookup invented a site")
	}
}

// Names is sorted and contains registered points; Armed tracks state;
// DisarmAll clears everything.
func TestRegistryEnumeration(t *testing.T) {
	a := Register("test.reg.a")
	b := Register("test.reg.b")
	if Register("test.reg.a") != a {
		t.Fatal("re-Register returned a different site")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if err := Arm(a.Name(), Injection{}); err != nil {
		t.Fatal(err)
	}
	if err := Arm(b.Name(), Injection{}); err != nil {
		t.Fatal(err)
	}
	armed := Armed()
	found := 0
	for _, n := range armed {
		if n == a.Name() || n == b.Name() {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("Armed() = %v, missing test points", armed)
	}
	DisarmAll()
	if got := Armed(); len(got) != 0 {
		t.Fatalf("Armed() after DisarmAll = %v", got)
	}
}

// Concurrent hits on an armed point race-cleanly and honor Count.
func TestConcurrentHits(t *testing.T) {
	s := Register("test.concurrent")
	defer Disarm(s.Name())
	if err := Arm(s.Name(), Injection{Count: 100}); err != nil {
		t.Fatal(err)
	}
	done := make(chan int)
	for g := 0; g < 8; g++ {
		go func() {
			n := 0
			for i := 0; i < 1000; i++ {
				if s.Hit() != nil {
					n++
				}
			}
			done <- n
		}()
	}
	total := 0
	for g := 0; g < 8; g++ {
		total += <-done
	}
	if total != 100 {
		t.Fatalf("fired %d times under concurrency, want exactly 100", total)
	}
}
