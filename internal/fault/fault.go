// Package fault is a zero-dependency registry of named fault points for
// deterministic failure injection. A fault point is declared once at
// package init (fault.Register("colexec.scan")) and hit at the call
// site (site.Hit()); while disarmed — the permanent state in
// production — a hit is a single atomic pointer load and returns nil
// without allocating, so points may sit on hot paths guarded by
// 0 allocs/op benchmarks. Tests and the chaos suite arm points with a
// deterministic Injection plan (error, panic, latency, short write)
// keyed by hit count and an optional seeded probability, exercise the
// failure edge, and disarm.
//
// The package also owns ErrInternal, the sentinel for "a bug inside
// prism was caught and isolated" (a recovered panic, an invariant
// violation). It lives here — the one package everything may import —
// so both the engine layers and the wire layer can share it without an
// import cycle.
package fault

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInternal reports that prism caught a bug in itself — typically a
// recovered panic — and aborted the round that hit it. The process,
// worker pool, and other rounds stay healthy. On the wire it maps to
// HTTP 500 with code "internal".
var ErrInternal = errors.New("prism: internal error")

// ErrInjected is the default error returned by an armed fault point
// whose Injection does not set Err.
var ErrInjected = errors.New("fault: injected error")

// Mode selects what an armed fault point does when an injection fires.
type Mode int

const (
	// ModeError makes Hit return Injection.Err (ErrInjected if unset).
	ModeError Mode = iota
	// ModePanic makes Hit panic with a descriptive value. Used to
	// exercise the panic-isolation seams.
	ModePanic
	// ModeDelay makes Hit sleep for Injection.Delay, then return nil.
	// Used to wedge executors under the round watchdog.
	ModeDelay
	// ModeShortWrite leaves Hit returning nil but makes writers
	// wrapped by Site.Writer truncate one write and fail. Used on
	// snapshot/stream IO seams.
	ModeShortWrite
)

// String names the mode for logs and chaos-suite output.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	case ModeShortWrite:
		return "short-write"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Injection is a deterministic plan for when and how an armed point
// fires. The zero value fires ModeError with ErrInjected on every hit.
type Injection struct {
	// Mode selects the failure to inject.
	Mode Mode
	// Err is returned by ModeError hits (and wrapped into the panic
	// value for ModePanic). Defaults to ErrInjected.
	Err error
	// Delay is how long ModeDelay sleeps per firing hit.
	Delay time.Duration
	// Skip suppresses the first Skip hits after arming, so a plan can
	// target e.g. "the third read".
	Skip uint64
	// Count caps how many hits fire (after Skip); 0 means unlimited.
	// A point whose budget is exhausted behaves as disarmed.
	Count uint64
	// Prob, when in (0,1), fires each eligible hit with that
	// probability drawn from a deterministic generator seeded by
	// Seed — the same seed always yields the same firing pattern.
	Prob float64
	// Seed seeds the Prob generator.
	Seed uint64
}

// armed is the immutable per-arming state published to Hit via one
// atomic pointer; counters are atomics inside it.
type armed struct {
	inj   Injection
	hits  atomic.Uint64 // hits observed since arming
	fired atomic.Uint64 // hits that actually injected
	rng   atomic.Uint64 // xorshift state for Prob
}

// Site is one named fault point. The zero Site is invalid; obtain
// sites from Register.
type Site struct {
	name string
	arm  atomic.Pointer[armed]
	hits atomic.Uint64 // lifetime hits, armed or not
}

// Name returns the registered name of the point.
func (s *Site) Name() string { return s.name }

// Hit reports whether an injection fires at this call site. Disarmed —
// the production state — it is one atomic load, returns nil, and does
// not allocate. Armed, it applies the Injection plan: it may sleep
// (ModeDelay), panic (ModePanic), or return an error (ModeError).
// ModeShortWrite plans return nil here; they act through Writer.
func (s *Site) Hit() error {
	a := s.arm.Load()
	if a == nil {
		return nil
	}
	s.hits.Add(1)
	if !a.fire() {
		return nil
	}
	switch a.inj.Mode {
	case ModePanic:
		panic(fmt.Sprintf("fault: injected panic at %s: %v", s.name, a.err()))
	case ModeDelay:
		time.Sleep(a.inj.Delay)
		return nil
	case ModeShortWrite:
		return nil
	default:
		return a.err()
	}
}

// err returns the error an armed plan injects.
func (a *armed) err() error {
	if a.inj.Err != nil {
		return a.inj.Err
	}
	return ErrInjected
}

// fire applies the Skip/Count/Prob schedule to one hit and reports
// whether it injects.
func (a *armed) fire() bool {
	n := a.hits.Add(1)
	if n <= a.inj.Skip {
		return false
	}
	if p := a.inj.Prob; p > 0 && p < 1 {
		// nextRand is uniform over [0, 2^64): fire iff rand/2^64 < p.
		if float64(a.nextRand())/(1<<64) >= p {
			return false
		}
	}
	if a.inj.Count > 0 && a.fired.Load() >= a.inj.Count {
		return false
	}
	if a.inj.Count > 0 && a.fired.Add(1) > a.inj.Count {
		return false
	}
	if a.inj.Count == 0 {
		a.fired.Add(1)
	}
	return true
}

// nextRand steps a 64-bit xorshift generator (seeded from
// Injection.Seed) atomically, so concurrent hits draw a deterministic
// sequence given a serial order.
func (a *armed) nextRand() uint64 {
	for {
		old := a.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if a.rng.CompareAndSwap(old, x) {
			return x
		}
	}
}

// Fired returns how many times this site has injected since it was
// last armed, and how many hits it has observed over its lifetime.
func (s *Site) Fired() (fired, hits uint64) {
	if a := s.arm.Load(); a != nil {
		fired = a.fired.Load()
	}
	return fired, s.hits.Load()
}

// shortWriter truncates the first eligible write and returns the
// injected error, mimicking a torn write to disk or a dropped
// connection mid-frame.
type shortWriter struct {
	w    io.Writer
	site *Site
}

func (sw shortWriter) Write(p []byte) (int, error) {
	a := sw.site.arm.Load()
	if a == nil || a.inj.Mode != ModeShortWrite {
		return sw.w.Write(p)
	}
	sw.site.hits.Add(1)
	if !a.fire() {
		return sw.w.Write(p)
	}
	n := len(p) / 2
	if n > 0 {
		if wn, err := sw.w.Write(p[:n]); err != nil {
			return wn, err
		}
	}
	return n, fmt.Errorf("fault: short write at %s: %w", sw.site.name, a.err())
}

// Writer wraps w so that an armed ModeShortWrite plan on this site
// truncates writes. Disarmed (or armed with another mode) the wrapper
// passes writes through unchanged; wrapping itself is cheap enough for
// snapshot/stream encode paths, which allocate buffers anyway.
func (s *Site) Writer(w io.Writer) io.Writer { return shortWriter{w: w, site: s} }

// registry is the process-wide name → site table. Registration happens
// at package init; arming/disarming happens from tests.
var (
	regMu sync.RWMutex
	reg   = map[string]*Site{}
)

// Register declares (or returns the existing) fault point with the
// given name. Call it from package-level var initialisers:
//
//	var scanFault = fault.Register("colexec.scan")
func Register(name string) *Site {
	regMu.Lock()
	defer regMu.Unlock()
	if s, ok := reg[name]; ok {
		return s
	}
	s := &Site{name: name}
	reg[name] = s
	return s
}

// Lookup returns the registered site, or nil.
func Lookup(name string) *Site {
	regMu.RLock()
	defer regMu.RUnlock()
	return reg[name]
}

// Names returns the sorted names of every registered fault point — the
// sweep space for the chaos suite.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(reg))
	for n := range reg {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Arm installs an Injection plan on the named point. It returns an
// error for unknown names so a chaos plan with a typo fails loudly
// instead of sweeping nothing.
func Arm(name string, inj Injection) error {
	s := Lookup(name)
	if s == nil {
		return fmt.Errorf("fault: unknown point %q", name)
	}
	a := &armed{inj: inj}
	seed := inj.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	a.rng.Store(seed)
	s.arm.Store(a)
	return nil
}

// Disarm removes any plan from the named point. Unknown names are a
// no-op: disarming is used in cleanup paths that must not fail.
func Disarm(name string) {
	if s := Lookup(name); s != nil {
		s.arm.Store(nil)
	}
}

// DisarmAll removes the plans from every registered point. Chaos tests
// defer this so a failed assertion cannot leak an armed fault into the
// rest of the test binary.
func DisarmAll() {
	regMu.RLock()
	defer regMu.RUnlock()
	for _, s := range reg {
		s.arm.Store(nil)
	}
}

// Armed returns the names of currently armed points, sorted.
func Armed() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []string
	for n, s := range reg {
		if s.arm.Load() != nil {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
