// Package sqlgen renders Prism's Project-Join plans as SQL text — the form
// in which discovered schema mapping queries are shown to the user
// (Figure 4b) — and parses the same PJ subset of SQL back into executable
// plans, so generated queries can be round-tripped and re-run.
package sqlgen

import (
	"fmt"
	"slices"
	"strings"
	"unicode"

	"prism/internal/exec"
	"prism/internal/schema"
)

// Generate renders a Project-Join plan as a SQL SELECT statement in the
// style the paper displays:
//
//	SELECT geo_lake.Province, Lake.Name, Lake.Area
//	FROM Lake, geo_lake
//	WHERE Lake.Name = geo_lake.Lake
func Generate(p exec.Plan) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if p.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, c := range p.Project {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(quoteRef(c))
	}
	b.WriteString(" FROM ")
	tables := append([]string(nil), p.Tables...)
	for i, t := range tables {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(quoteIdent(t))
	}
	if len(p.Joins) > 0 {
		b.WriteString(" WHERE ")
		for i, j := range p.Joins {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(quoteRef(j.Left))
			b.WriteString(" = ")
			b.WriteString(quoteRef(j.Right))
		}
	}
	return b.String()
}

// GenerateMultiline renders the plan with one clause per line, which the
// Result section uses for readability.
func GenerateMultiline(p exec.Plan) string {
	oneLine := Generate(p)
	oneLine = strings.Replace(oneLine, " FROM ", "\nFROM ", 1)
	oneLine = strings.Replace(oneLine, " WHERE ", "\nWHERE ", 1)
	return oneLine
}

func quoteRef(r schema.ColumnRef) string {
	return quoteIdent(r.Table) + "." + quoteIdent(r.Column)
}

// quoteIdent quotes an identifier only when necessary (spaces or reserved
// characters), keeping generated SQL close to the paper's examples.
func quoteIdent(s string) string {
	needs := false
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			needs = true
			break
		}
	}
	if !needs {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// ---------------------------------------------------------------------------
// Parsing the PJ subset of SQL
// ---------------------------------------------------------------------------

// Parse parses a Project-Join SELECT statement of the form produced by
// Generate (SELECT [DISTINCT] cols FROM tables [WHERE equi-join conjuncts])
// and returns the corresponding plan. It validates the plan against the
// schema when one is provided (pass nil to skip validation).
func Parse(sql string, sch *schema.Schema) (exec.Plan, error) {
	toks, err := tokenize(sql)
	if err != nil {
		return exec.Plan{}, err
	}
	p := &sqlParser{toks: toks, input: sql}
	plan, err := p.parseSelect()
	if err != nil {
		return exec.Plan{}, err
	}
	if sch != nil {
		if err := plan.Validate(sch); err != nil {
			return exec.Plan{}, fmt.Errorf("sqlgen: parsed plan invalid: %w", err)
		}
	}
	return plan, nil
}

type sqlToken struct {
	text  string
	upper string
	pos   int
}

func tokenize(sql string) ([]sqlToken, error) {
	var toks []sqlToken
	runes := []rune(sql)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == ',' || r == '=' || r == '(' || r == ')' || r == ';' || r == '.':
			toks = append(toks, sqlToken{text: string(r), upper: string(r), pos: i})
			i++
		case r == '"':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(runes) {
				if runes[i] == '"' {
					if i+1 < len(runes) && runes[i+1] == '"' {
						sb.WriteRune('"')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteRune(runes[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlgen: unterminated quoted identifier at %d", start)
			}
			toks = append(toks, sqlToken{text: sb.String(), upper: strings.ToUpper(sb.String()), pos: start})
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			start := i
			for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i]) || runes[i] == '_' || runes[i] == '.') {
				i++
			}
			text := string(runes[start:i])
			toks = append(toks, sqlToken{text: text, upper: strings.ToUpper(text), pos: start})
		default:
			return nil, fmt.Errorf("sqlgen: unexpected character %q at %d", string(r), i)
		}
	}
	return toks, nil
}

type sqlParser struct {
	toks  []sqlToken
	input string
	pos   int
}

func (p *sqlParser) eof() bool { return p.pos >= len(p.toks) }

func (p *sqlParser) peek() (sqlToken, bool) {
	if p.eof() {
		return sqlToken{}, false
	}
	return p.toks[p.pos], true
}

func (p *sqlParser) next() (sqlToken, error) {
	if p.eof() {
		return sqlToken{}, fmt.Errorf("sqlgen: unexpected end of statement")
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *sqlParser) expectKeyword(kw string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.upper != kw {
		return fmt.Errorf("sqlgen: expected %s, found %q at %d", kw, t.text, t.pos)
	}
	return nil
}

func (p *sqlParser) parseSelect() (exec.Plan, error) {
	var plan exec.Plan
	if err := p.expectKeyword("SELECT"); err != nil {
		return plan, err
	}
	if t, ok := p.peek(); ok && t.upper == "DISTINCT" {
		plan.Distinct = true
		p.pos++
	}
	// Projection list.
	for {
		ref, err := p.parseColumnRef()
		if err != nil {
			return plan, err
		}
		plan.Project = append(plan.Project, ref)
		t, ok := p.peek()
		if ok && t.text == "," {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return plan, err
	}
	seen := make(map[string]bool)
	for {
		t, err := p.next()
		if err != nil {
			return plan, err
		}
		if strings.ContainsAny(t.text, ".,=();") || t.upper == "WHERE" {
			return plan, fmt.Errorf("sqlgen: expected table name, found %q at %d", t.text, t.pos)
		}
		if !seen[strings.ToLower(t.text)] {
			seen[strings.ToLower(t.text)] = true
			plan.Tables = append(plan.Tables, t.text)
		}
		nt, ok := p.peek()
		if ok && nt.text == "," {
			p.pos++
			continue
		}
		break
	}
	if t, ok := p.peek(); ok && t.upper == "WHERE" {
		p.pos++
		for {
			left, err := p.parseColumnRef()
			if err != nil {
				return plan, err
			}
			eq, err := p.next()
			if err != nil {
				return plan, err
			}
			if eq.text != "=" {
				return plan, fmt.Errorf("sqlgen: only equi-join conditions are supported, found %q at %d", eq.text, eq.pos)
			}
			right, err := p.parseColumnRef()
			if err != nil {
				return plan, err
			}
			plan.Joins = append(plan.Joins, exec.JoinEdge{Left: left, Right: right})
			t, ok := p.peek()
			if ok && t.upper == "AND" {
				p.pos++
				continue
			}
			break
		}
	}
	if t, ok := p.peek(); ok && t.text == ";" {
		p.pos++
	}
	if !p.eof() {
		t, _ := p.peek()
		return plan, fmt.Errorf("sqlgen: unexpected trailing token %q at %d", t.text, t.pos)
	}
	return plan, nil
}

func (p *sqlParser) parseColumnRef() (schema.ColumnRef, error) {
	t, err := p.next()
	if err != nil {
		return schema.ColumnRef{}, err
	}
	text := t.text
	// Common unquoted case: one token "Table.Column".
	if strings.Contains(text, ".") && !strings.HasPrefix(text, ".") && !strings.HasSuffix(text, ".") {
		parts := strings.SplitN(text, ".", 2)
		return schema.ColumnRef{Table: parts[0], Column: parts[1]}, nil
	}
	// Quoted variants: the table, the dot and the column arrive as separate
	// tokens ("geo lake" . Province, Lake . "Pro vince", or Lake. "x").
	table := strings.TrimSuffix(text, ".")
	if table == "" || strings.Contains(table, ".") {
		return schema.ColumnRef{}, fmt.Errorf("sqlgen: expected table.column, found %q at %d", t.text, t.pos)
	}
	if !strings.HasSuffix(text, ".") {
		dot, err := p.next()
		if err != nil {
			return schema.ColumnRef{}, err
		}
		if dot.text != "." {
			return schema.ColumnRef{}, fmt.Errorf("sqlgen: expected '.', found %q at %d", dot.text, dot.pos)
		}
	}
	col, err := p.next()
	if err != nil {
		return schema.ColumnRef{}, err
	}
	if col.text == "" || strings.ContainsAny(col.text, ".,=();") {
		return schema.ColumnRef{}, fmt.Errorf("sqlgen: expected column name, found %q at %d", col.text, col.pos)
	}
	return schema.ColumnRef{Table: table, Column: col.text}, nil
}

// Normalize canonicalises a generated SQL string so that logically identical
// PJ queries compare equal: projection order is preserved (it is the target
// schema order) but table lists and join conjuncts are sorted.
func Normalize(sql string, sch *schema.Schema) (string, error) {
	plan, err := Parse(sql, sch)
	if err != nil {
		return "", err
	}
	slices.Sort(plan.Tables)
	slices.SortFunc(plan.Joins, func(a, b exec.JoinEdge) int {
		return strings.Compare(canonicalJoin(a), canonicalJoin(b))
	})
	for i, j := range plan.Joins {
		if j.Right.String() < j.Left.String() {
			plan.Joins[i] = exec.JoinEdge{Left: j.Right, Right: j.Left}
		}
	}
	return Generate(plan), nil
}

func canonicalJoin(j exec.JoinEdge) string {
	a, b := strings.ToLower(j.Left.String()), strings.ToLower(j.Right.String())
	if a > b {
		a, b = b, a
	}
	return a + "=" + b
}
