package sqlgen

import (
	"strings"
	"testing"

	"prism/internal/mem"
	"prism/internal/schema"
	"prism/internal/value"
)

func ref(t, c string) schema.ColumnRef { return schema.ColumnRef{Table: t, Column: c} }

func lakePlan() mem.Plan {
	return mem.Plan{
		Tables: []string{"Lake", "geo_lake"},
		Joins: []mem.JoinEdge{
			{Left: ref("Lake", "Name"), Right: ref("geo_lake", "Lake")},
		},
		Project: []schema.ColumnRef{
			ref("geo_lake", "Province"),
			ref("Lake", "Name"),
			ref("Lake", "Area"),
		},
	}
}

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	s := schema.New()
	if err := s.AddTable(schema.MustTable("Lake",
		schema.Column{Name: "Name", Type: value.Text},
		schema.Column{Name: "Area", Type: value.Decimal},
	)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTable(schema.MustTable("geo_lake",
		schema.Column{Name: "Lake", Type: value.Text},
		schema.Column{Name: "Province", Type: value.Text},
	)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddForeignKey(schema.ForeignKey{
		From: ref("geo_lake", "Lake"), To: ref("Lake", "Name"),
	}); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGeneratePaperQuery(t *testing.T) {
	got := Generate(lakePlan())
	want := "SELECT geo_lake.Province, Lake.Name, Lake.Area FROM Lake, geo_lake WHERE Lake.Name = geo_lake.Lake"
	if got != want {
		t.Errorf("Generate =\n%s\nwant\n%s", got, want)
	}
}

func TestGenerateDistinctAndSingleTable(t *testing.T) {
	p := mem.Plan{
		Tables:   []string{"Lake"},
		Project:  []schema.ColumnRef{ref("Lake", "Name")},
		Distinct: true,
	}
	got := Generate(p)
	if got != "SELECT DISTINCT Lake.Name FROM Lake" {
		t.Errorf("Generate = %q", got)
	}
	if strings.Contains(got, "WHERE") {
		t.Error("no WHERE clause expected")
	}
}

func TestGenerateQuoting(t *testing.T) {
	p := mem.Plan{
		Tables:  []string{"geo lake"},
		Project: []schema.ColumnRef{{Table: "geo lake", Column: "Pro\"vince"}},
	}
	got := Generate(p)
	if !strings.Contains(got, `"geo lake"."Pro""vince"`) {
		t.Errorf("identifiers should be quoted: %q", got)
	}
}

func TestGenerateMultiline(t *testing.T) {
	got := GenerateMultiline(lakePlan())
	lines := strings.Split(got, "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "SELECT") || !strings.HasPrefix(lines[1], "FROM") || !strings.HasPrefix(lines[2], "WHERE") {
		t.Errorf("GenerateMultiline =\n%s", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	sch := testSchema(t)
	sql := Generate(lakePlan())
	plan, err := Parse(sql, sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tables) != 2 || len(plan.Joins) != 1 || len(plan.Project) != 3 {
		t.Fatalf("parsed plan = %+v", plan)
	}
	if plan.Project[0].String() != "geo_lake.Province" {
		t.Errorf("projection order must be preserved: %v", plan.Project)
	}
	if Generate(plan) != sql {
		t.Errorf("round trip changed SQL:\n%s\n%s", Generate(plan), sql)
	}
}

func TestParseWithoutSchemaValidation(t *testing.T) {
	plan, err := Parse("SELECT a.x FROM a", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tables) != 1 || plan.Tables[0] != "a" {
		t.Errorf("plan = %+v", plan)
	}
	// Same statement fails schema validation against the lake schema.
	if _, err := Parse("SELECT a.x FROM a", testSchema(t)); err == nil {
		t.Error("validation against schema should fail for unknown table")
	}
}

func TestParseVariants(t *testing.T) {
	sch := testSchema(t)
	cases := []string{
		"select geo_lake.Province, Lake.Name from Lake, geo_lake where Lake.Name = geo_lake.Lake",
		"SELECT DISTINCT Lake.Name FROM Lake;",
		"SELECT Lake.Name, Lake.Area FROM Lake",
		"SELECT geo_lake.Province, Lake.Name, Lake.Area FROM Lake, geo_lake WHERE Lake.Name = geo_lake.Lake AND geo_lake.Lake = Lake.Name",
	}
	for _, sql := range cases {
		if _, err := Parse(sql, sch); err != nil {
			t.Errorf("Parse(%q): %v", sql, err)
		}
	}
}

func TestParseQuotedIdentifiers(t *testing.T) {
	s := schema.New()
	if err := s.AddTable(schema.MustTable("geo lake", schema.Column{Name: "Pro vince", Type: value.Text})); err != nil {
		t.Fatal(err)
	}
	p := mem.Plan{Tables: []string{"geo lake"}, Project: []schema.ColumnRef{{Table: "geo lake", Column: "Pro vince"}}}
	sql := Generate(p)
	back, err := Parse(sql, s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	if back.Project[0].Table != "geo lake" || back.Project[0].Column != "Pro vince" {
		t.Errorf("quoted round trip = %+v", back.Project)
	}
}

func TestParseErrors(t *testing.T) {
	sch := testSchema(t)
	bad := []string{
		"",
		"UPDATE Lake SET x = 1",
		"SELECT FROM Lake",
		"SELECT Lake.Name",
		"SELECT Lake.Name FROM",
		"SELECT Name FROM Lake",            // unqualified column
		"SELECT Lake.Name FROM Lake WHERE", // dangling where
		"SELECT Lake.Name FROM Lake WHERE Lake.Name",                     // incomplete condition
		"SELECT Lake.Name FROM Lake WHERE Lake.Name = 5andmore trailing", // trailing garbage
		"SELECT Lake.Name FROM Lake WHERE Lake.Name > geo_lake.Lake",     // non-equi join
		"SELECT Lake.Name FROM Lake extra",
		"SELECT \"Lake.Name FROM Lake",                                   // unterminated quote
		"SELECT Lake.Name FROM Lake WHERE Lake.Name = geo_lake.Lake AND", // dangling AND
		"SELECT Lake.Name FROM Lake, WHERE Lake.Name = geo_lake.Lake",    // missing table
	}
	for _, sql := range bad {
		if _, err := Parse(sql, sch); err == nil {
			t.Errorf("Parse(%q) expected error", sql)
		}
	}
}

func TestParseRejectsUnsupportedCharacters(t *testing.T) {
	if _, err := Parse("SELECT Lake.Name FROM Lake WHERE Lake.Area = 497", nil); err == nil {
		t.Error("literal predicates are outside the PJ subset and should be rejected")
	}
	if _, err := Parse("SELECT * FROM Lake", nil); err == nil {
		t.Error("star projection should be rejected")
	}
}

func TestNormalize(t *testing.T) {
	sch := testSchema(t)
	a := "SELECT geo_lake.Province, Lake.Name FROM geo_lake, Lake WHERE geo_lake.Lake = Lake.Name"
	b := "SELECT geo_lake.Province, Lake.Name FROM Lake, geo_lake WHERE Lake.Name = geo_lake.Lake"
	na, err := Normalize(a, sch)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Normalize(b, sch)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb {
		t.Errorf("normalized forms differ:\n%s\n%s", na, nb)
	}
	if _, err := Normalize("not sql", sch); err == nil {
		t.Error("Normalize should propagate parse errors")
	}
}

func TestExecuteParsedPlan(t *testing.T) {
	// Generated SQL, parsed back, must execute and produce the paper's rows.
	sch := testSchema(t)
	db := mem.NewDatabase("roundtrip", sch)
	rows := [][]string{
		{"Lake Tahoe", "497"},
		{"Crater Lake", "53.2"},
	}
	for _, r := range rows {
		if err := db.InsertStrings("Lake", r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.InsertStrings("geo_lake", "Lake Tahoe", "California"); err != nil {
		t.Fatal(err)
	}
	db.Analyze()
	plan, err := Parse(Generate(lakePlan()), sch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Rows[0][0].Text() != "California" {
		t.Errorf("unexpected result:\n%s", res)
	}
}

func BenchmarkGenerate(b *testing.B) {
	p := lakePlan()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Generate(p)
	}
}

func BenchmarkParse(b *testing.B) {
	sql := Generate(lakePlan())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sql, nil); err != nil {
			b.Fatal(err)
		}
	}
}
