// Package chaos is the fault-matrix differential suite for the serving
// stack. Its tests (run under -race in the chaos-smoke CI leg) sweep
// every registered fault point — and seeded random combinations — while
// a live server answers traffic, asserting the robustness invariants:
//
//   - only structured (*api.Error with a code) or typed errors escape;
//   - a poisoned round never takes the process, worker pool, or a
//     concurrent healthy round with it;
//   - goroutines return to baseline after every sweep (no leaks);
//   - with every point disarmed, mapping sets are byte-identical to the
//     pre-sweep baseline (faults leave no residue).
//
// The package itself holds only the test harness helpers; everything of
// substance is in the _test files.
package chaos

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"prism/api"
	"prism/client"
	"prism/internal/dataset"
	"prism/internal/server"
)

// Stack is one live serving stack under chaos: a real HTTP server over
// a reduced Mondial plus a client pointed at it.
type Stack struct {
	Srv *httptest.Server
	C   *client.Client
}

// NewStack boots the stack. The dataset is the same reduced Mondial the
// client equivalence tests use, so rounds are fast but non-trivial.
func NewStack(t testing.TB) *Stack {
	t.Helper()
	db, err := dataset.Mondial(dataset.MondialConfig{
		Seed: 9, Countries: 3, ProvincesPerCountry: 2, CitiesPerProvince: 2,
		Lakes: 20, Rivers: 10, Mountains: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := server.New()
	s.TimeLimit = 30 * time.Second
	s.RegisterDatabase("mondial", db)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	stack := &Stack{Srv: srv}
	stack.C = stack.NewClient(t)
	return stack
}

// NewClient returns a client for the stack. Keep-alives are disabled so
// every exchange runs on a fresh connection: faults routinely kill
// connections mid-exchange, and a poisoned pooled connection would leak
// transport errors into the next subtest — exactly the unstructured
// failures the suite asserts cannot happen. It also keeps the server's
// per-connection goroutines out of the leak baselines.
func (s *Stack) NewClient(t testing.TB, opts ...client.Option) *client.Client {
	t.Helper()
	httpc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	opts = append([]client.Option{client.WithHTTPClient(httpc)}, opts...)
	c, err := client.New(s.Srv.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// Request is the standard paper-grid discovery round the suite poisons.
func Request() api.DiscoverRequest {
	return api.DiscoverRequest{
		Database:    "mondial",
		NumColumns:  3,
		Samples:     [][]string{{"California || Nevada", "Lake Tahoe", ""}},
		Metadata:    []string{"", "", "DataType=='decimal' AND MinValue>='0'"},
		Parallelism: 2,
	}
}

// CheckGoroutines snapshots the goroutine count and returns a check to
// defer: it fails t unless the count settles back to the baseline (plus
// a small slack for runtime and idle-connection residue) within the
// wait budget. Call the returned func after disarming faults and
// closing idle connections.
func CheckGoroutines(t testing.TB, wait time.Duration) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		const slack = 4
		deadline := time.Now().Add(wait)
		n := runtime.NumGoroutine()
		for n > before+slack && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n > before+slack {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d before, %d after settling\n%s", before, n, buf)
		}
	}
}
