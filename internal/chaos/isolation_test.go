package chaos

// Panic isolation under concurrency, and the round watchdog: one
// poisoned tenant's round dies with a structured internal error while
// sibling tenants' concurrent rounds — and the process — stay healthy;
// a wedged executor cannot hold a round past its time budget.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"prism"
	"prism/api"
	"prism/client"
	"prism/internal/fault"
)

// TestPanicIsolationAcrossTenants fires five tenants' rounds
// concurrently with a one-shot panic armed on the round seam: exactly
// one round absorbs the panic and fails with code "internal"; the other
// four succeed untouched; the process keeps serving and records the
// recovered panic in its metrics.
func TestPanicIsolationAcrossTenants(t *testing.T) {
	stack := NewStack(t)
	ctx := context.Background()
	check := CheckGoroutines(t, 5*time.Second)

	const tenants = 5
	clients := make([]*client.Client, tenants)
	for i := range clients {
		clients[i] = stack.NewClient(t, client.WithTenant(fmt.Sprintf("tenant-%d", i)))
	}

	if err := fault.Arm("discovery.round", fault.Injection{Mode: fault.ModePanic, Count: 1}); err != nil {
		t.Fatal(err)
	}
	defer fault.DisarmAll()

	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = clients[i].Discover(ctx, Request())
		}(i)
	}
	wg.Wait()

	failed := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		failed++
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != api.CodeInternal {
			t.Fatalf("tenant %d failed with %v, want structured code %q", i, err, api.CodeInternal)
		}
	}
	if failed != 1 {
		t.Fatalf("%d rounds absorbed the one-shot panic, want exactly 1 (errs %v)", failed, errs)
	}

	// The pool and process survived: liveness holds, readiness holds, and
	// the recovered panic is visible in the process metrics.
	if err := stack.C.Healthz(ctx); err != nil {
		t.Fatalf("healthz after isolated panic: %v", err)
	}
	r, err := stack.C.Readyz(ctx)
	if err != nil || !r.Ready {
		t.Fatalf("readyz after isolated panic: %+v, %v", r, err)
	}
	metrics, err := stack.C.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics, `prism_panics_recovered_total{site="discovery.round"}`) {
		t.Fatal("recovered round panic not exported in metrics")
	}

	fault.DisarmAll()
	check()
}

// TestWatchdogFreesWedgedRound wedges every validation in a sleep that
// ignores its context and pins that the round watchdog returns the
// partial result at TimeLimit+grace instead of waiting the sleep out.
func TestWatchdogFreesWedgedRound(t *testing.T) {
	check := CheckGoroutines(t, 5*time.Second)
	eng, err := prism.Open("nba")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := prism.ParseConstraints(2, [][]string{{"Los Angeles", "Lakers"}}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const wedge = 1500 * time.Millisecond
	if err := fault.Arm("sched.validate", fault.Injection{Mode: fault.ModeDelay, Delay: wedge}); err != nil {
		t.Fatal(err)
	}
	defer fault.DisarmAll()

	start := time.Now()
	report, err := eng.Discover(context.Background(), spec, prism.Options{
		TimeLimit:     200 * time.Millisecond,
		WatchdogGrace: 100 * time.Millisecond,
		Parallelism:   2,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("watchdogged round returned an error instead of a partial report: %v", err)
	}
	if report == nil || !report.TimedOut {
		t.Fatalf("report = %+v, want TimedOut", report)
	}
	if elapsed >= wedge {
		t.Fatalf("round took %v — the watchdog never freed it from the %v wedge", elapsed, wedge)
	}

	fault.DisarmAll()
	check()
}
