package chaos

// The fault-matrix sweep: every registered fault point armed in turn
// (error mode for all, panic mode for the points on the request path),
// plus seeded random combinations, against one live serving stack.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"prism"
	"prism/api"
	"prism/client"
	"prism/internal/fault"
)

// catalog is the fault-point catalog this PR ships, pinned so that
// docs/robustness.md and the sweep space cannot drift silently: adding
// a point means updating the doc and this list together.
var catalog = []string{
	"colexec.batch",
	"colexec.exec",
	"colexec.scan",
	"dataset.csv.read",
	"dataset.open",
	"dataset.sqlite.read",
	"discovery.round",
	"sched.validate",
	"serve.admit",
	"serve.sink.write",
	"server.handler",
	"server.stream.cut",
	"snapshot.decode",
	"snapshot.encode",
	"snapshot.rename",
	"snapshot.sync",
}

func TestFaultPointCatalog(t *testing.T) {
	got := fault.Names()
	if len(got) != len(catalog) {
		t.Fatalf("registered fault points = %v, want the documented catalog %v", got, catalog)
	}
	for i, name := range catalog {
		if got[i] != name {
			t.Fatalf("fault point %d = %q, want %q (full set %v)", i, got[i], name, got)
		}
	}
}

// assertStructured fails unless err is a structured *api.Error carrying
// a code, or one of the typed client sentinels.
func assertStructured(t *testing.T, point string, err error) {
	t.Helper()
	var apiErr *api.Error
	switch {
	case errors.As(err, &apiErr):
		if apiErr.Code == "" {
			t.Fatalf("point %s: structured error without a code: %v", point, apiErr)
		}
	case errors.Is(err, client.ErrStreamTruncated):
	case errors.Is(err, prism.ErrInternal):
	default:
		t.Fatalf("point %s: unstructured error escaped: %T %v", point, err, err)
	}
}

// baseline runs one healthy round and returns its mapping set as JSON
// bytes — the equivalence reference the sweeps must restore.
func baseline(t *testing.T, c *client.Client) []byte {
	t.Helper()
	resp, err := c.Discover(context.Background(), Request())
	if err != nil {
		t.Fatalf("healthy round failed: %v", err)
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("healthy round found no mappings")
	}
	raw, err := json.Marshal(resp.Mappings)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func assertEqualsBaseline(t *testing.T, c *client.Client, want []byte, when string) {
	t.Helper()
	resp, err := c.Discover(context.Background(), Request())
	if err != nil {
		t.Fatalf("%s: healthy round failed: %v", when, err)
	}
	got, err := json.Marshal(resp.Mappings)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("%s: mapping set diverged from baseline\n got: %s\nwant: %s", when, got, want)
	}
}

// streamPoints are only exercised on the NDJSON streaming path.
var streamPoints = map[string]bool{
	"serve.sink.write":  true,
	"server.stream.cut": true,
}

// TestErrorModeSweep arms every registered point with an error plan in
// turn: whatever the poisoned round reports must be structured or
// typed, the server must keep answering, and after disarming the
// mapping set must be byte-identical to the pre-sweep baseline.
func TestErrorModeSweep(t *testing.T) {
	stack := NewStack(t)
	ctx := context.Background()
	want := baseline(t, stack.C)

	for _, point := range fault.Names() {
		t.Run(point, func(t *testing.T) {
			check := CheckGoroutines(t, 5*time.Second)
			if err := fault.Arm(point, fault.Injection{Mode: fault.ModeError}); err != nil {
				t.Fatal(err)
			}
			defer fault.DisarmAll()

			if streamPoints[point] {
				events, err := stack.C.DiscoverStream(ctx, Request())
				if err != nil {
					assertStructured(t, point, err)
				} else {
					for ev := range events {
						if ev.Err != nil {
							assertStructured(t, point, ev.Err)
						}
					}
				}
			} else if _, err := stack.C.Discover(ctx, Request()); err != nil {
				assertStructured(t, point, err)
			}

			// The process must still answer. With the handler point armed
			// the probe itself fails — but it must fail structured.
			if err := stack.C.Healthz(ctx); err != nil {
				if point != "server.handler" {
					t.Fatalf("healthz failed with %s armed: %v", point, err)
				}
				assertStructured(t, point, err)
			}

			fault.DisarmAll()
			assertEqualsBaseline(t, stack.C, want, "after disarming "+point)
			check()
		})
	}
	assertEqualsBaseline(t, stack.C, want, "after the full sweep")
}

// panicPoints are the points a discovery round or its HTTP exchange is
// guaranteed to pass through, each behind a panic-isolation seam; mustFire
// marks the ones whose firing the sweep asserts (the colexec points
// depend on the plan shapes the round happens to validate).
var panicPoints = []struct {
	name     string
	mustFire bool
}{
	{"server.handler", true},
	{"serve.admit", true},
	{"discovery.round", true},
	{"sched.validate", true},
	{"colexec.exec", false},
	{"colexec.scan", false},
	{"colexec.batch", false},
}

// TestPanicModeSweep arms each request-path point to panic once: the
// poisoned round must fail with the structured internal error, the
// process must survive, and the next round must match the baseline.
func TestPanicModeSweep(t *testing.T) {
	stack := NewStack(t)
	ctx := context.Background()
	want := baseline(t, stack.C)

	for _, pp := range panicPoints {
		t.Run(pp.name, func(t *testing.T) {
			check := CheckGoroutines(t, 5*time.Second)
			if err := fault.Arm(pp.name, fault.Injection{Mode: fault.ModePanic, Count: 1}); err != nil {
				t.Fatal(err)
			}
			defer fault.DisarmAll()

			_, err := stack.C.Discover(ctx, Request())
			fired, _ := fault.Lookup(pp.name).Fired()
			if pp.mustFire && fired == 0 {
				t.Fatalf("point %s never fired during a discover round", pp.name)
			}
			if fired > 0 {
				if err == nil {
					t.Fatalf("point %s panicked but the round reported success", pp.name)
				}
				var apiErr *api.Error
				if !errors.As(err, &apiErr) || apiErr.Code != api.CodeInternal {
					t.Fatalf("point %s: panic surfaced as %v, want structured code %q",
						pp.name, err, api.CodeInternal)
				}
				if !errors.Is(err, prism.ErrInternal) {
					t.Fatalf("point %s: structured internal error does not unwrap to prism.ErrInternal", pp.name)
				}
			}

			// The panic was isolated: the process still serves.
			if err := stack.C.Healthz(ctx); err != nil {
				t.Fatalf("process unhealthy after isolated panic at %s: %v", pp.name, err)
			}
			fault.DisarmAll()
			assertEqualsBaseline(t, stack.C, want, "after panic at "+pp.name)
			check()
		})
	}
}

// TestSeededRandomCombinations arms random subsets of the catalog with
// probabilistic plans (deterministic per seed) and fires a burst of
// rounds: every failure must be structured or typed, and disarming must
// restore the baseline exactly.
func TestSeededRandomCombinations(t *testing.T) {
	stack := NewStack(t)
	ctx := context.Background()
	want := baseline(t, stack.C)
	names := fault.Names()

	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			check := CheckGoroutines(t, 5*time.Second)
			rng := rand.New(rand.NewSource(seed))
			armed := map[string]bool{}
			for len(armed) < 3 {
				name := names[rng.Intn(len(names))]
				if armed[name] {
					continue
				}
				armed[name] = true
				if err := fault.Arm(name, fault.Injection{
					Mode: fault.ModeError, Prob: 0.4, Seed: rng.Uint64(),
				}); err != nil {
					t.Fatal(err)
				}
			}
			defer fault.DisarmAll()

			for i := 0; i < 4; i++ {
				if _, err := stack.C.Discover(ctx, Request()); err != nil {
					assertStructured(t, fmt.Sprintf("combo %v round %d", fault.Armed(), i), err)
				}
			}
			fault.DisarmAll()
			assertEqualsBaseline(t, stack.C, want, "after random combination")
			check()
		})
	}
}
