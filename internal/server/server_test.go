package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"prism/internal/dataset"
)

// testServer uses a reduced Mondial instance registered under the standard
// name so the bundled default-size set is never built during tests.
func testServer(t testing.TB) *Server {
	t.Helper()
	s := New()
	s.TimeLimit = 30 * time.Second
	db, err := dataset.Mondial(dataset.MondialConfig{
		Seed: 9, Countries: 3, ProvincesPerCountry: 2, CitiesPerProvince: 2,
		Lakes: 20, Rivers: 10, Mountains: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterDatabase("mondial", db)
	return s
}

func paperRequest() DiscoverRequest {
	return DiscoverRequest{
		Database:   "mondial",
		NumColumns: 3,
		Samples:    [][]string{{"California || Nevada", "Lake Tahoe", ""}},
		Metadata:   []string{"", "", "DataType=='decimal' AND MinValue>='0'"},
	}
}

func TestHandleDatasets(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/datasets", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var body map[string][]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if len(body["datasets"]) != 3 {
		t.Errorf("datasets = %v", body)
	}
	// Wrong method.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/datasets", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/datasets = %d", rec.Code)
	}
}

func TestDiscoverAPIPaperExample(t *testing.T) {
	s := testServer(t)
	body, _ := json.Marshal(paperRequest())
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/discover", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body)
	}
	var resp DiscoverResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" || resp.Failure != "" {
		t.Fatalf("unexpected error/failure: %+v", resp)
	}
	if len(resp.Mappings) == 0 {
		t.Fatal("no mappings returned")
	}
	found := false
	for _, m := range resp.Mappings {
		if strings.Contains(m.SQL, "geo_lake.Province, Lake.Name, Lake.Area") {
			found = true
			if len(m.ResultRows) == 0 {
				t.Error("result rows should be attached")
			}
		}
	}
	if !found {
		t.Errorf("paper query missing from response: %+v", resp.Mappings)
	}
	if resp.Validations == 0 || resp.Candidates == 0 {
		t.Error("statistics should be populated")
	}
}

func TestDiscoverAPIErrors(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/discover", strings.NewReader(body)))
		return rec
	}
	if rec := post("{not json"); rec.Code != http.StatusBadRequest {
		t.Errorf("invalid JSON status = %d", rec.Code)
	}
	if rec := post(`{"database":"unknown-db","numColumns":1,"samples":[["x"]]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown database status = %d", rec.Code)
	}
	if rec := post(`{"database":"mondial","numColumns":0,"samples":[]}`); rec.Code != http.StatusBadRequest {
		t.Errorf("bad spec status = %d", rec.Code)
	}
	// A keyword that exists nowhere: discovery fails with 422.
	if rec := post(`{"database":"mondial","numColumns":1,"samples":[["Unobtainium Atlantis"]]}`); rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unmatchable constraint status = %d", rec.Code)
	}
	// GET is not allowed.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/discover", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/discover = %d", rec.Code)
	}
}

func TestIndexPage(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	html := rec.Body.String()
	for _, want := range []string{"Configuration", "Description", "Start Searching!", "Lake Tahoe", "mondial"} {
		if !strings.Contains(html, want) {
			t.Errorf("index page missing %q", want)
		}
	}
	// Unknown paths 404.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path = %d", rec.Code)
	}
}

func TestDiscoverFormRendersResultSection(t *testing.T) {
	s := testServer(t)
	form := url.Values{
		"database": {"mondial"},
		"columns":  {"3"},
		"policy":   {"bayes"},
		"samples":  {"California || Nevada | Lake Tahoe | "},
		"metadata": {" |  | DataType=='decimal' AND MinValue>='0'"},
	}
	req := httptest.NewRequest(http.MethodPost, "/discover", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	html := rec.Body.String()
	for _, want := range []string{"Result", "SELECT", "geo_lake", "<svg"} {
		if !strings.Contains(html, want) {
			t.Errorf("result page missing %q", want)
		}
	}
	// GET on /discover is rejected.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/discover", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /discover = %d", rec.Code)
	}
}

func TestSplitCellsAndGridParsing(t *testing.T) {
	cells := splitCells("California || Nevada | Lake Tahoe | ")
	if len(cells) != 3 || cells[0] != "California || Nevada" || cells[1] != "Lake Tahoe" || cells[2] != "" {
		t.Errorf("splitCells = %#v", cells)
	}
	cells = splitCells("a | b | c")
	if len(cells) != 3 || cells[1] != "b" {
		t.Errorf("splitCells simple = %#v", cells)
	}
	rows := parseGridText("a | b\n\nc | d\n", 2)
	if len(rows) != 2 || rows[1][0] != "c" {
		t.Errorf("parseGridText = %#v", rows)
	}
	padded := padRow([]string{"x"}, 3)
	if len(padded) != 3 || padded[0] != "x" || padded[2] != "" {
		t.Errorf("padRow = %#v", padded)
	}
	if got := padRow([]string{"x", "y"}, 0); len(got) != 2 {
		t.Errorf("padRow with n=0 should keep cells: %#v", got)
	}
}

func TestRegisterDatabaseOverridesBundled(t *testing.T) {
	s := New()
	db, err := dataset.Mondial(dataset.MondialConfig{
		Seed: 1, Countries: 2, ProvincesPerCountry: 1, CitiesPerProvince: 1,
		Lakes: 8, Rivers: 4, Mountains: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterDatabase("tiny", db)
	if _, err := s.engine("TINY"); err != nil {
		t.Errorf("registered database lookup should be case-insensitive: %v", err)
	}
	if _, err := s.engine("never-registered"); err == nil {
		t.Error("unknown database should error")
	}
}

func BenchmarkDiscoverAPI(b *testing.B) {
	s := testServer(b)
	body, _ := json.Marshal(paperRequest())
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/discover", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d", rec.Code)
		}
	}
}
