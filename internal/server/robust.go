package server

// Robustness surface of the HTTP tier: the handler panic barrier (a
// panicking handler answers a structured 500 and the process keeps
// serving), the liveness/readiness probes, and the HTTP-layer fault
// points.

import (
	"fmt"
	"net/http"

	"prism/api"
	"prism/internal/fault"
)

var (
	// faultHandler fires at the top of every wrapped handler. Armed
	// with ModeError it fails requests with a structured 500; with
	// ModePanic it exercises the handler panic barrier.
	faultHandler = fault.Register("server.handler")
	// faultStreamCut fires per streamed event in the discover-stream
	// loop; armed, it drops the connection mid-stream without a done
	// event — the truncation clients must detect.
	faultStreamCut = fault.Register("server.stream.cut")
)

// recovered is the panic barrier wrapping every route: a panic below it
// is counted, converted to a structured 500 {"error","code":"internal"}
// (when the response header is still writable) and the process, pool
// and other requests stay healthy.
func (s *Server) recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				// Best-effort: if the handler already started a streaming
				// body the 500 cannot be delivered, but the connection
				// still terminates and the server survives.
				writeAPIError(w, http.StatusInternalServerError, api.CodeInternal,
					fmt.Sprintf("%v (recovered: %v)", api.ErrInternal, rec))
			}
		}()
		if err := faultHandler.Hit(); err != nil {
			writeAPIError(w, http.StatusInternalServerError, api.CodeInternal,
				fmt.Sprintf("%v: %v", api.ErrInternal, err))
			return
		}
		h(w, r)
	}
}

// handleHealthz serves GET /api/v1/healthz: liveness. Any response at
// all means the process is alive, so the body is always 200 "ok" —
// readiness questions belong to readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, api.HealthzResponse{Status: "ok"})
}

// handleReadyz serves GET /api/v1/readyz: 200 while the server should
// receive traffic, 503 with the degradation reasons while it should
// not (draining, repeated engine failures, sustained shed).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "use GET")
		return
	}
	ready, reasons := s.health.Ready()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, api.ReadyzResponse{Ready: ready, Reasons: reasons})
}
