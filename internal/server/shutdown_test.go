package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestListenAndServeGracefulShutdown: cancelling the context drains the
// server and returns nil; a clean exit, not a listener error.
func TestListenAndServeGracefulShutdown(t *testing.T) {
	// Reserve a free port, release it, and hand the address to the server.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	s := testServer(t)
	s.ShutdownGrace = 5 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, addr) }()

	// Wait until the server answers, proving the listener is up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/api/v1/datasets")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe did not return after cancellation")
	}

	// The port is released.
	if _, err := http.Get("http://" + addr + "/api/v1/datasets"); err == nil {
		t.Error("server still serving after shutdown")
	}
}

// TestListenAndServeListenerError: a dead listener reports its error
// without waiting for the context.
func TestListenAndServeListenerError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	s := testServer(t)
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(context.Background(), l.Addr().String()) }()
	select {
	case err := <-done:
		if err == nil || errors.Is(err, context.Canceled) {
			t.Fatalf("want a bind error, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe did not fail on an occupied port")
	}
}
