package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestListenAndServeGracefulShutdown: cancelling the context drains the
// server and returns nil; a clean exit, not a listener error.
func TestListenAndServeGracefulShutdown(t *testing.T) {
	// Reserve a free port, release it, and hand the address to the server.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	s := testServer(t)
	s.ShutdownGrace = 5 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, addr) }()

	// Wait until the server answers, proving the listener is up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/api/v1/datasets")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up on %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe did not return after cancellation")
	}

	// The port is released.
	if _, err := http.Get("http://" + addr + "/api/v1/datasets"); err == nil {
		t.Error("server still serving after shutdown")
	}
}

// TestDrainLetsInFlightStreamFinish pins graceful shutdown under load:
// draining the admission controller mid-round leaves the admitted
// streaming round untouched — it runs to completion and delivers its
// done event — while new work is rejected with an immediate structured
// 503.
func TestDrainLetsInFlightStreamFinish(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	body, err := json.Marshal(paperRequest())
	if err != nil {
		t.Fatal(err)
	}

	// Catch a streaming round in flight. Rounds on the reduced dataset
	// take a few milliseconds, so the admission gauge is observable for
	// the whole round; relaunch if one slips through between polls.
	var rec *httptest.ResponseRecorder
	var done chan struct{}
	caught := false
	for attempt := 0; attempt < 50 && !caught; attempt++ {
		rec = httptest.NewRecorder()
		done = make(chan struct{})
		go func(rec *httptest.ResponseRecorder, done chan struct{}) {
			defer close(done)
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/discover/stream", bytes.NewReader(body)))
		}(rec, done)
		for !caught {
			if s.admission.Snapshot().InFlight > 0 {
				caught = true
				break
			}
			select {
			case <-done:
			default:
				time.Sleep(50 * time.Microsecond)
				continue
			}
			break // finished between polls; relaunch
		}
	}
	if !caught {
		t.Fatal("could not catch a streaming round in flight")
	}

	s.admission.Drain()

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight stream did not finish after drain")
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("in-flight stream status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"event":"done"`) {
		t.Errorf("in-flight stream missing done event: %s", rec.Body.String())
	}

	// New work is rejected immediately while draining.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/discover", bytes.NewReader(body)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain discover = %d, want 503", rec.Code)
	}
}

// TestListenAndServeListenerError: a dead listener reports its error
// without waiting for the context.
func TestListenAndServeListenerError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	s := testServer(t)
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(context.Background(), l.Addr().String()) }()
	select {
	case err := <-done:
		if err == nil || errors.Is(err, context.Canceled) {
			t.Fatalf("want a bind error, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ListenAndServe did not fail on an occupied port")
	}
}
