package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestStructuredAPIErrors is the contract of the JSON API's failure mode:
// every bad request to /api/sample, /api/discover and /api/discover/stream
// comes back as a JSON body carrying both a human-readable "error" and a
// machine-readable "code" — never a bare non-JSON status page.
func TestStructuredAPIErrors(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"sample unknown dataset", http.MethodGet, "/api/sample?db=atlantis&table=Lake", "", http.StatusBadRequest, "unknown_database"},
		{"sample unknown table", http.MethodGet, "/api/sample?db=mondial&table=Spaceship", "", http.StatusBadRequest, "unknown_table"},
		{"sample wrong method", http.MethodPost, "/api/sample?db=mondial&table=Lake", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"discover unknown dataset", http.MethodPost, "/api/discover",
			`{"database":"atlantis","numColumns":1,"samples":[["x"]]}`, http.StatusBadRequest, "unknown_database"},
		{"discover unknown executor", http.MethodPost, "/api/discover",
			`{"database":"mondial","numColumns":1,"samples":[["x"]],"executor":"gpu"}`, http.StatusBadRequest, "unknown_executor"},
		{"discover invalid json", http.MethodPost, "/api/discover", `{not json`, http.StatusBadRequest, "bad_request"},
		{"discover bad constraints", http.MethodPost, "/api/discover",
			`{"database":"mondial","numColumns":0,"samples":[]}`, http.StatusBadRequest, "bad_request"},
		{"discover wrong method", http.MethodGet, "/api/discover", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"stream unknown dataset", http.MethodPost, "/api/discover/stream",
			`{"database":"atlantis","numColumns":1,"samples":[["x"]]}`, http.StatusBadRequest, "unknown_database"},
		{"stream unknown executor", http.MethodPost, "/api/discover/stream",
			`{"database":"mondial","numColumns":1,"samples":[["x"]],"executor":"gpu"}`, http.StatusBadRequest, "unknown_executor"},
		{"stream invalid json", http.MethodPost, "/api/discover/stream", `{not json`, http.StatusBadRequest, "bad_request"},
		{"stream wrong method", http.MethodGet, "/api/discover/stream", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"datasets wrong method", http.MethodPost, "/api/datasets", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"session unknown dataset", http.MethodPost, "/api/session", `{"database":"atlantis"}`, http.StatusBadRequest, "unknown_database"},
		{"session unknown id", http.MethodGet, "/api/session/deadbeef", "", http.StatusNotFound, "unknown_session"},
		{"session refine unknown id", http.MethodPost, "/api/session/deadbeef/refine", `{}`, http.StatusNotFound, "unknown_session"},
		{"session wrong method", http.MethodGet, "/api/session", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"session id wrong method", http.MethodPut, "/api/session/deadbeef", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"session refine wrong method", http.MethodGet, "/api/session/deadbeef/refine", "", http.StatusMethodNotAllowed, "method_not_allowed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, body))
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body)
			}
			if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type = %q — errors must be JSON, not bare statuses", ct)
			}
			var payload struct {
				Error string `json:"error"`
				Code  string `json:"code"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
				t.Fatalf("body is not JSON: %q (%v)", rec.Body.String(), err)
			}
			if payload.Error == "" {
				t.Error("error message missing")
			}
			if payload.Code != tc.code {
				t.Errorf("code = %q, want %q (error: %s)", payload.Code, tc.code, payload.Error)
			}
		})
	}
}

// TestSampleLimitValidation audits the /api/sample limit parameter: zero,
// negative and non-numeric sample sizes must come back as a structured
// invalid_request error — pre-fix the handler silently substituted the
// default and returned 200, hiding caller bugs. Valid limits (and the
// implicit default) still serve rows.
func TestSampleLimitValidation(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	cases := []struct {
		name   string
		limit  string // raw query value; "" means omit the parameter
		status int
		code   string // expected error code; "" means success expected
	}{
		{name: "default limit", limit: "", status: http.StatusOK},
		{name: "positive limit", limit: "3", status: http.StatusOK},
		{name: "zero limit", limit: "0", status: http.StatusBadRequest, code: "invalid_request"},
		{name: "negative limit", limit: "-7", status: http.StatusBadRequest, code: "invalid_request"},
		{name: "garbage limit", limit: "lots", status: http.StatusBadRequest, code: "invalid_request"},
		{name: "fractional limit", limit: "2.5", status: http.StatusBadRequest, code: "invalid_request"},
		{name: "overflowing limit", limit: "99999999999999999999", status: http.StatusBadRequest, code: "invalid_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			url := "/api/sample?db=mondial&table=Lake"
			if tc.limit != "" {
				url += "&limit=" + tc.limit
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body)
			}
			if tc.code == "" {
				var payload struct {
					Rows [][]string `json:"rows"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
					t.Fatalf("body is not JSON: %q (%v)", rec.Body.String(), err)
				}
				if len(payload.Rows) == 0 {
					t.Error("no rows in a successful sample")
				}
				return
			}
			var payload struct {
				Error string `json:"error"`
				Code  string `json:"code"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
				t.Fatalf("body is not JSON: %q (%v)", rec.Body.String(), err)
			}
			if payload.Code != tc.code {
				t.Errorf("code = %q, want %q (error: %s)", payload.Code, tc.code, payload.Error)
			}
			if payload.Error == "" {
				t.Error("error message missing")
			}
		})
	}
}
