package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"prism"
	"prism/api"
)

// sessionStore keeps the server's live refinement sessions, evicting by
// idle TTL and, beyond MaxSessions, by least recent use. Eviction runs
// opportunistically on every access, so the store needs no background
// goroutine and an idle server holds no timers.
type sessionStore struct {
	mu       sync.Mutex
	ttl      time.Duration
	max      int
	now      func() time.Time // injected by tests
	sessions map[string]*serverSession
}

// serverSession binds one prism.Session to its HTTP identity.
type serverSession struct {
	id       string
	database string
	sess     *prism.Session
	created  time.Time
	lastUsed time.Time
}

func newSessionStore(ttl time.Duration, max int) *sessionStore {
	if ttl <= 0 {
		ttl = 15 * time.Minute
	}
	if max <= 0 {
		max = 64
	}
	return &sessionStore{
		ttl:      ttl,
		max:      max,
		now:      time.Now,
		sessions: make(map[string]*serverSession),
	}
}

// evictLocked drops expired sessions, then the least recently used ones
// beyond the capacity. Callers hold st.mu.
func (st *sessionStore) evictLocked() {
	now := st.now()
	for id, ss := range st.sessions {
		if now.Sub(ss.lastUsed) > st.ttl {
			ss.sess.Close()
			delete(st.sessions, id)
		}
	}
	if len(st.sessions) <= st.max {
		return
	}
	byAge := make([]*serverSession, 0, len(st.sessions))
	for _, ss := range st.sessions {
		byAge = append(byAge, ss)
	}
	sort.Slice(byAge, func(i, j int) bool { return byAge[i].lastUsed.Before(byAge[j].lastUsed) })
	for _, ss := range byAge[:len(st.sessions)-st.max] {
		ss.sess.Close()
		delete(st.sessions, ss.id)
	}
}

// add registers a new session and returns its id.
func (st *sessionStore) add(database string, sess *prism.Session) *serverSession {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked()
	ss := &serverSession{
		id:       newSessionID(),
		database: database,
		sess:     sess,
		created:  st.now(),
		lastUsed: st.now(),
	}
	st.sessions[ss.id] = ss
	// A full store evicts its least recently used session to admit the new
	// one, so creates never fail under load.
	st.evictLocked()
	return ss
}

// get returns the session and refreshes its recency.
func (st *sessionStore) get(id string) (*serverSession, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.evictLocked()
	ss, ok := st.sessions[id]
	if ok {
		ss.lastUsed = st.now()
	}
	return ss, ok
}

// remove closes and forgets the session.
func (st *sessionStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss, ok := st.sessions[id]
	if ok {
		ss.sess.Close()
		delete(st.sessions, id)
	}
	return ok
}

func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: session id entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// ---------------------------------------------------------------------------
// Session JSON API
// ---------------------------------------------------------------------------

// The session wire types are defined in prism/api (shared with the Go
// client); the aliases keep this package's historical names working.
type (
	// SessionCreateRequest is the body of POST /api/v1/session.
	SessionCreateRequest = api.SessionCreateRequest
	// SessionResponse describes one refinement session.
	SessionResponse = api.SessionResponse
	// CellUpdateRequest rewrites one sample cell.
	CellUpdateRequest = api.CellUpdate
	// MetadataUpdateRequest rewrites one metadata cell.
	MetadataUpdateRequest = api.MetadataUpdate
	// DeltaRequest names the constraint cells a refine round changes.
	DeltaRequest = api.Delta
	// SessionRefineRequest is the body of POST /api/v1/session/{id}/refine.
	SessionRefineRequest = api.RefineRequest
)

// requestDelta converts the transport form into the engine's delta type.
func requestDelta(d *DeltaRequest) prism.Delta {
	out := prism.Delta{
		RemoveSamples: d.RemoveSamples,
		AddSamples:    d.AddSamples,
	}
	for _, u := range d.UpdateCells {
		out.UpdateCells = append(out.UpdateCells, prism.CellUpdate{Row: u.Row, Col: u.Col, Cell: u.Cell})
	}
	for _, m := range d.SetMetadata {
		out.SetMetadata = append(out.SetMetadata, prism.MetadataUpdate{Col: m.Col, Cell: m.Cell})
	}
	return out
}

func (s *Server) sessionResponse(ss *serverSession) SessionResponse {
	st := ss.sess.CacheStats()
	return SessionResponse{
		SessionID: ss.id,
		Database:  ss.database,
		Rounds:    ss.sess.Rounds(),
		TTLMs:     s.sessions.ttl.Milliseconds(),
		Cache:     CacheResponse{Hits: st.Hits, Misses: st.Misses, Stores: st.Stores},
	}
}

// handleSessionCreate serves POST /api/session: it opens a refinement
// session over the named database and returns its id. Rounds then go to
// POST /api/session/{id}/refine; idle sessions are evicted after
// Server.SessionTTL.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeAPIError(w, http.StatusBadRequest, api.CodeBadRequest, "invalid JSON: "+err.Error())
		return
	}
	eng, err := s.engine(req.Database)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, errorCode(err), err.Error())
		return
	}
	// The session must outlive this request — its lifetime is the store's
	// TTL window, not the HTTP exchange — so it is not tied to r.Context().
	ss := s.sessions.add(req.Database, eng.NewSession(context.Background()))
	writeJSON(w, http.StatusOK, s.sessionResponse(ss))
}

// handleSessionInfo serves GET /api/session/{id}.
func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeAPIError(w, http.StatusNotFound, api.CodeUnknownSession, "unknown or expired session "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.sessionResponse(ss))
}

// handleSessionDelete serves DELETE /api/session/{id}.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.remove(r.PathValue("id")) {
		writeAPIError(w, http.StatusNotFound, api.CodeUnknownSession, "unknown or expired session "+r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, api.SessionCloseResponse{Closed: true})
}

// handleSessionRefine serves POST /api/session/{id}/refine: one discovery
// round of the session, either over a full specification or over a delta
// against the session's current constraints. The response is a
// DiscoverResponse whose cache counters report how many validations the
// session's filter-outcome cache saved.
func (s *Server) handleSessionRefine(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeAPIError(w, http.StatusNotFound, api.CodeUnknownSession, "unknown or expired session "+r.PathValue("id"))
		return
	}
	var req SessionRefineRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeAPIError(w, http.StatusBadRequest, api.CodeBadRequest, "invalid JSON: "+err.Error())
		return
	}
	base := DiscoverRequest{
		Database:    ss.database,
		Policy:      req.Policy,
		MaxResults:  req.MaxResults,
		TimeoutMs:   req.TimeoutMs,
		Parallelism: req.Parallelism,
		Executor:    req.Executor,
	}
	opts, err := s.roundOptions(base)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, errorCode(err), err.Error())
		return
	}
	rd := &round{opts: opts}
	ctx, cancel := rd.requestContext(r.Context())
	defer cancel()

	// Failed rounds still commit the session's refined specification (the
	// engine session applies the delta before the round runs), so error
	// responses carry the session identity and committed round count too —
	// remote clients resync on them instead of re-applying their delta.
	writeRoundError := func(status int, report *prism.Report, err error, spec *prism.Spec) {
		s.recordRoundMetrics(ctx, report)
		resp := s.discoverResponse(base, report, err, spec, false)
		resp.SessionID = ss.id
		resp.Round = ss.sess.Rounds()
		writeJSON(w, status, resp)
	}

	var report *prism.Report
	hasFullSpec := req.Spec != nil || len(req.Samples) > 0 || req.NumColumns > 0
	switch {
	case hasFullSpec && req.Delta != nil:
		// Ambiguous: applying one and silently dropping the other would
		// make the client's edit vanish behind a 200.
		writeAPIError(w, http.StatusBadRequest, api.CodeBadRequest,
			"send either a full specification (numColumns + samples, or a structured spec) or a delta, not both")
		return
	case hasFullSpec:
		spec, err := specFromRequest(req.Spec, req.NumColumns, req.Samples, req.Metadata)
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
			return
		}
		report, err = ss.sess.Discover(ctx, spec, opts)
		if err != nil {
			writeRoundError(http.StatusUnprocessableEntity, report, err, spec)
			return
		}
	case req.Delta != nil:
		report, err = ss.sess.Refine(ctx, requestDelta(req.Delta), opts)
		if err != nil {
			status := http.StatusUnprocessableEntity
			if report == nil {
				// The delta itself was rejected; no round ran.
				status = http.StatusBadRequest
			}
			writeRoundError(status, report, err, ss.sess.Spec())
			return
		}
	default:
		writeAPIError(w, http.StatusBadRequest, api.CodeBadRequest,
			"a refine round needs either a full specification (numColumns + samples, or a structured spec) or a delta")
		return
	}

	s.recordRoundMetrics(ctx, report)
	resp := s.discoverResponse(base, report, nil, ss.sess.Spec(), false)
	resp.SessionID = ss.id
	resp.Round = ss.sess.Rounds()
	writeJSON(w, http.StatusOK, resp)
}
