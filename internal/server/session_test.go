package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// doJSON posts a JSON body and decodes the response into out.
func doJSON(t *testing.T, h http.Handler, method, path string, body any, out any) *httptest.ResponseRecorder {
	t.Helper()
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, bytes.NewReader(payload)))
	if out != nil && rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec
}

func createSession(t *testing.T, h http.Handler) SessionResponse {
	t.Helper()
	var sr SessionResponse
	rec := doJSON(t, h, http.MethodPost, "/api/session", SessionCreateRequest{Database: "mondial"}, &sr)
	if rec.Code != http.StatusOK || sr.SessionID == "" {
		t.Fatalf("create session: status=%d body=%s", rec.Code, rec.Body)
	}
	return sr
}

func TestSessionCreateRefineLoop(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	sr := createSession(t, h)
	refinePath := "/api/session/" + sr.SessionID + "/refine"

	// Round 1: seed with the full paper specification.
	seed := SessionRefineRequest{
		NumColumns:  3,
		Samples:     [][]string{{"California || Nevada", "Lake Tahoe", ""}},
		Metadata:    []string{"", "", "DataType=='decimal' AND MinValue>='0'"},
		Parallelism: 1,
	}
	var cold DiscoverResponse
	if rec := doJSON(t, h, http.MethodPost, refinePath, seed, &cold); rec.Code != http.StatusOK {
		t.Fatalf("seed round: status=%d body=%s", rec.Code, rec.Body)
	}
	if cold.Round != 1 || cold.SessionID != sr.SessionID {
		t.Errorf("seed round meta: %+v", cold)
	}
	if len(cold.Mappings) == 0 || cold.Validations == 0 {
		t.Fatalf("seed round found nothing: %+v", cold)
	}
	if cold.Cache == nil || cold.Cache.Hits != 0 || cold.Cache.Stores != cold.Validations {
		t.Errorf("seed round cache counters: %+v", cold.Cache)
	}

	// Round 2: a delta refining the Area column must reuse the cached text
	// outcomes — strictly fewer validations, hits > 0.
	refine := SessionRefineRequest{
		Delta:       &DeltaRequest{UpdateCells: []CellUpdateRequest{{Row: 0, Col: 2, Cell: "[400, 600]"}}},
		Parallelism: 1,
	}
	var warm DiscoverResponse
	if rec := doJSON(t, h, http.MethodPost, refinePath, refine, &warm); rec.Code != http.StatusOK {
		t.Fatalf("refine round: status=%d body=%s", rec.Code, rec.Body)
	}
	if warm.Round != 2 {
		t.Errorf("refine round = %d, want 2", warm.Round)
	}
	if warm.Cache == nil || warm.Cache.Hits == 0 {
		t.Fatalf("refine round reused nothing: %+v", warm.Cache)
	}
	if warm.Validations >= cold.Validations {
		t.Errorf("refine validations = %d, cold = %d — want strictly fewer", warm.Validations, cold.Validations)
	}

	// Round 3: clearing the refinement returns to known constraints — a
	// fully warm round with zero validations and the cold mapping set.
	back := SessionRefineRequest{
		Delta:       &DeltaRequest{UpdateCells: []CellUpdateRequest{{Row: 0, Col: 2, Cell: ""}}},
		Parallelism: 1,
	}
	var again DiscoverResponse
	if rec := doJSON(t, h, http.MethodPost, refinePath, back, &again); rec.Code != http.StatusOK {
		t.Fatalf("third round: status=%d body=%s", rec.Code, rec.Body)
	}
	if again.Validations != 0 {
		t.Errorf("fully warm round executed %d validations", again.Validations)
	}
	if len(again.Mappings) != len(cold.Mappings) {
		t.Fatalf("mapping count changed: %d vs %d", len(again.Mappings), len(cold.Mappings))
	}
	for i := range again.Mappings {
		if again.Mappings[i].SQL != cold.Mappings[i].SQL {
			t.Errorf("mapping %d differs: %q vs %q", i, again.Mappings[i].SQL, cold.Mappings[i].SQL)
		}
	}

	// Session info reflects the rounds and lifetime cache stats.
	var info SessionResponse
	if rec := doJSON(t, h, http.MethodGet, "/api/session/"+sr.SessionID, nil, &info); rec.Code != http.StatusOK {
		t.Fatalf("info: status=%d", rec.Code)
	}
	if info.Rounds != 3 || info.Cache.Hits == 0 {
		t.Errorf("info = %+v", info)
	}

	// Delete ends the session; refines then 404 with a structured code.
	if rec := doJSON(t, h, http.MethodDelete, "/api/session/"+sr.SessionID, nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("delete: status=%d", rec.Code)
	}
	var apiErr apiError
	if rec := doJSON(t, h, http.MethodPost, refinePath, refine, &apiErr); rec.Code != http.StatusNotFound || apiErr.Code != "unknown_session" {
		t.Errorf("refine after delete: status=%d body=%+v", rec.Code, apiErr)
	}
}

func TestSessionRefineInputErrors(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	sr := createSession(t, h)
	refinePath := "/api/session/" + sr.SessionID + "/refine"

	cases := []struct {
		name   string
		body   any
		status int
		code   string
	}{
		{"delta before seeding", SessionRefineRequest{Delta: &DeltaRequest{RemoveSamples: []int{0}}}, http.StatusBadRequest, "bad_request"},
		{"neither spec nor delta", SessionRefineRequest{}, http.StatusBadRequest, "bad_request"},
		{"both spec and delta", SessionRefineRequest{
			NumColumns: 1, Samples: [][]string{{"x"}},
			Delta: &DeltaRequest{RemoveSamples: []int{0}},
		}, http.StatusBadRequest, "bad_request"},
		{"unknown executor", SessionRefineRequest{Executor: "gpu", NumColumns: 1, Samples: [][]string{{"x"}}}, http.StatusBadRequest, "unknown_executor"},
		{"bad constraints", SessionRefineRequest{NumColumns: 2, Samples: [][]string{{">=", "x"}}}, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var apiErr apiError
			rec := doJSON(t, h, http.MethodPost, refinePath, tc.body, &apiErr)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", rec.Code, tc.status, rec.Body)
			}
			if apiErr.Code != tc.code {
				t.Errorf("code = %q, want %q (body %s)", apiErr.Code, tc.code, rec.Body)
			}
		})
	}

	// An out-of-range delta against a seeded session is rejected without
	// running a round (400, not 422).
	seed := SessionRefineRequest{NumColumns: 3,
		Samples:  [][]string{{"California || Nevada", "Lake Tahoe", ""}},
		Metadata: []string{"", "", "DataType=='decimal' AND MinValue>='0'"}}
	if rec := doJSON(t, h, http.MethodPost, refinePath, seed, nil); rec.Code != http.StatusOK {
		t.Fatalf("seed: %d", rec.Code)
	}
	bad := SessionRefineRequest{Delta: &DeltaRequest{RemoveSamples: []int{9}}}
	var resp DiscoverResponse
	if rec := doJSON(t, h, http.MethodPost, refinePath, bad, &resp); rec.Code != http.StatusBadRequest || resp.Error == "" {
		t.Errorf("bad delta: status=%d body=%+v", rec.Code, resp)
	}
}

func TestSessionCreateUnknownDatabase(t *testing.T) {
	s := testServer(t)
	var apiErr apiError
	rec := doJSON(t, s.Handler(), http.MethodPost, "/api/session", SessionCreateRequest{Database: "nope"}, &apiErr)
	if rec.Code != http.StatusBadRequest || apiErr.Code != "unknown_database" {
		t.Errorf("status=%d body=%+v", rec.Code, apiErr)
	}
}

func TestSessionStoreTTLAndLRUEviction(t *testing.T) {
	s := testServer(t)
	s.SessionTTL = time.Minute
	s.MaxSessions = 2
	h := s.Handler()

	clock := time.Now()
	s.sessions.now = func() time.Time { return clock }

	a := createSession(t, h)
	clock = clock.Add(10 * time.Second)
	b := createSession(t, h)

	// Touch a so b is least recently used, then exceed the capacity: the
	// third session must evict b, keep a.
	clock = clock.Add(10 * time.Second)
	if rec := doJSON(t, h, http.MethodGet, "/api/session/"+a.SessionID, nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("touch a: %d", rec.Code)
	}
	clock = clock.Add(10 * time.Second)
	c := createSession(t, h)
	if s.sessions.len() != 2 {
		t.Fatalf("store holds %d sessions, want 2", s.sessions.len())
	}
	if rec := doJSON(t, h, http.MethodGet, "/api/session/"+b.SessionID, nil, nil); rec.Code != http.StatusNotFound {
		t.Errorf("b should have been LRU-evicted, got %d", rec.Code)
	}
	if rec := doJSON(t, h, http.MethodGet, "/api/session/"+a.SessionID, nil, nil); rec.Code != http.StatusOK {
		t.Errorf("a should have survived, got %d", rec.Code)
	}

	// Idle past the TTL: everything is gone, with the structured code.
	clock = clock.Add(2 * time.Minute)
	var apiErr apiError
	if rec := doJSON(t, h, http.MethodGet, "/api/session/"+c.SessionID, nil, &apiErr); rec.Code != http.StatusNotFound || apiErr.Code != "unknown_session" {
		t.Errorf("c after TTL: status=%d body=%+v", rec.Code, apiErr)
	}
	if s.sessions.len() != 0 {
		t.Errorf("store holds %d sessions after TTL, want 0", s.sessions.len())
	}
}
