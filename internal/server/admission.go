package server

// The serving-tier integration: every discovery round passes the
// admission controller (prism/internal/serve) before it may start, so a
// multi-tenant deployment degrades by shedding load with 429 + Retry-After
// instead of queueing unboundedly, and GET /api/v1/stats exposes the
// controller, per-class latency quantiles and the validation worker pools
// for scrapers (prism-loadtest, dashboards, the CI regression leg).

import (
	"context"
	"errors"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"prism/api"
	"prism/internal/sched"
	"prism/internal/serve"
)

// init wires the serving-tier state; it is idempotent and called by
// Handler, so every entry point (ListenAndServe, tests mounting Handler
// directly) gets an admission controller.
func (s *Server) init() {
	s.initOnce.Do(func() {
		if s.sessions == nil {
			s.sessions = newSessionStore(s.SessionTTL, s.MaxSessions)
		}
		s.admission = serve.NewController(s.Admission)
		s.latencies = serve.NewLatencies(0)
		s.health = serve.NewHealth(s.Health)
		s.started = time.Now()
		s.initMetrics()
	})
}

// maxParallelism is the server-side cap on req.Parallelism (the scheduler
// would otherwise spawn an unbounded validation pool per round).
func (s *Server) maxParallelism() int {
	if s.MaxParallelism > 0 {
		return s.MaxParallelism
	}
	return 4 * runtime.GOMAXPROCS(0)
}

// admitted gates a round-running handler behind the admission controller.
// The tenant comes from the X-Prism-Tenant header (DefaultTenant when
// absent), the priority class from X-Prism-Priority (the handler's default
// when absent; an unknown value is a structured 400). Shed requests get
// 429 with a Retry-After hint; during shutdown the answer is an immediate
// 503 so a restarting fleet fails fast. Admitted rounds are timed into the
// per-class latency sketches on completion.
func (s *Server) admitted(def serve.Priority, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := r.Header.Get(api.TenantHeader)
		if tenant == "" {
			tenant = api.DefaultTenant
		}
		pri := def
		if raw := r.Header.Get(api.PriorityHeader); raw != "" {
			p, err := serve.ParsePriority(raw)
			if err != nil {
				writeAPIError(w, http.StatusBadRequest, api.CodeInvalidRequest, err.Error())
				return
			}
			pri = p
		}
		release, err := s.admission.Admit(r.Context(), tenant, pri)
		// Feed the readiness shed-rate window: a server shedding most of
		// its traffic for a sustained stretch should fail readyz so load
		// balancers route around it.
		s.health.ObserveAdmission(err != nil)
		if err != nil {
			s.writeAdmissionError(w, err)
			return
		}
		defer release()
		// Stash the tenant so round handlers can label per-tenant metrics.
		r = r.WithContext(context.WithValue(r.Context(), tenantKey{}, tenant))
		start := time.Now()
		h(w, r)
		s.latencies.Observe(pri, time.Since(start))
	}
}

// writeAdmissionError maps an admission failure to its wire shape:
// overloaded → 429 + Retry-After, draining → 503, an abandoned context →
// 503 (the client is usually gone by then).
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		secs := int(math.Ceil(s.admission.RetryAfter().Seconds()))
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeAPIError(w, http.StatusTooManyRequests, api.CodeOverloaded, err.Error())
	case errors.Is(err, serve.ErrDraining):
		writeAPIError(w, http.StatusServiceUnavailable, api.CodeDraining, err.Error())
	default:
		writeAPIError(w, http.StatusServiceUnavailable, api.CodeOverloaded,
			"request abandoned while queued: "+err.Error())
	}
}

// handleStats serves GET /api/v1/stats: admission counters (global and
// per-tenant), per-class latency quantiles over the sliding window, the
// validation worker-pool gauge and the stream-stall counter.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "use GET")
		return
	}
	snap := s.admission.Snapshot()
	resp := api.StatsResponse{
		UptimeMs: time.Since(s.started).Milliseconds(),
		Admission: api.AdmissionStats{
			MaxConcurrent: snap.MaxConcurrent,
			MaxPerTenant:  snap.MaxPerTenant,
			MaxQueue:      snap.MaxQueue,
			InFlight:      snap.InFlight,
			QueueDepth:    snap.QueueDepth,
			Admitted:      snap.Admitted,
			Shed:          snap.Shed,
			Drained:       snap.Drained,
			Draining:      snap.Draining,
		},
		StreamStalls: s.streamStalls.Load(),
		Panics:       s.panics.Load(),
	}
	resp.Ready, resp.ReadyReasons = s.health.Ready()
	for _, t := range snap.Tenants {
		resp.Tenants = append(resp.Tenants, api.TenantStats{
			Tenant:   t.Tenant,
			Admitted: t.Admitted,
			Shed:     t.Shed,
			InFlight: t.InFlight,
			Queued:   t.Queued,
		})
	}
	for _, l := range s.latencies.Snapshot() {
		resp.Latency = append(resp.Latency, api.LatencyStats{
			Priority: l.Priority.String(),
			Count:    l.Count,
			P50Ms:    l.P50Ms,
			P99Ms:    l.P99Ms,
		})
	}
	pool := sched.PoolSnapshot()
	resp.Pool = api.PoolStats{
		LiveWorkers:          pool.LiveWorkers,
		ActiveValidations:    pool.ActiveValidations,
		CompletedValidations: pool.CompletedValidations,
		Utilization:          pool.Utilization(),
	}
	writeJSON(w, http.StatusOK, resp)
}
