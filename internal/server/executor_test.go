package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestDiscoverAPIExecutorSelection checks that the JSON API threads the
// executor choice through to the round and echoes the backend that ran.
func TestDiscoverAPIExecutorSelection(t *testing.T) {
	s := testServer(t)
	for _, executor := range []string{"mem", "columnar", ""} {
		req := paperRequest()
		req.Executor = executor
		body, _ := json.Marshal(req)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/discover", bytes.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("executor %q: status = %d body = %s", executor, rec.Code, rec.Body)
		}
		var resp DiscoverResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		want := executor
		if want == "" {
			want = "columnar" // the engine default
		}
		if resp.Executor != want {
			t.Errorf("executor %q: response reports %q", executor, resp.Executor)
		}
		if len(resp.Mappings) == 0 {
			t.Errorf("executor %q: no mappings", executor)
		}
	}

	// An unknown backend is a client error, reported with the round error.
	req := paperRequest()
	req.Executor = "gpu"
	body, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/discover", bytes.NewReader(body)))
	if rec.Code == http.StatusOK {
		t.Errorf("unknown executor should not return 200: %s", rec.Body)
	}
}

// TestHandleSample checks the table-preview endpoint.
func TestHandleSample(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/sample?db=mondial&table=Lake&limit=4", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body)
	}
	var body struct {
		Table string     `json:"table"`
		Rows  [][]string `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Table != "Lake" || len(body.Rows) != 4 {
		t.Errorf("sample = %+v", body)
	}

	// Unknown table and database are client errors.
	for _, q := range []string{"db=mondial&table=NoSuch", "db=nosuch&table=Lake"} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/sample?"+q, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d", q, rec.Code)
		}
	}
	// Wrong method.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/sample", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/sample = %d", rec.Code)
	}
}
