package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"prism/api"
	"prism/internal/serve"
)

func postDiscover(t *testing.T, h http.Handler, req DiscoverRequest, headers map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/api/v1/discover", strings.NewReader(string(body)))
	for k, v := range headers {
		r.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

// TestAdmissionShedsWith429 pins the overload contract: with every slot
// busy and the queue full, a discover request is shed immediately as a
// structured 429 carrying the "overloaded" code and a Retry-After hint.
func TestAdmissionShedsWith429(t *testing.T) {
	s := testServer(t)
	s.Admission = serve.Config{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 30 * time.Second}
	h := s.Handler()

	// Occupy the only slot and fill the one queue position.
	release, err := s.admission.Admit(context.Background(), "hog", serve.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	queued := make(chan error, 1)
	go func() {
		rel, err := s.admission.Admit(context.Background(), "hog", serve.PriorityNormal)
		if rel != nil {
			rel()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return s.admission.Snapshot().QueueDepth == 1 })

	rec := postDiscover(t, h, paperRequest(), map[string]string{api.TenantHeader: "shed-me"})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", rec.Code, rec.Body.String())
	}
	secs, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", rec.Header().Get("Retry-After"))
	}
	var apiErr api.Error
	if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Code != api.CodeOverloaded {
		t.Errorf("code = %q, want %q", apiErr.Code, api.CodeOverloaded)
	}

	release()
	if err := <-queued; err != nil {
		t.Errorf("queued request after release: %v", err)
	}

	// The shed is accounted to the request's tenant.
	var stats api.StatsResponse
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/stats", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tn := range stats.Tenants {
		if tn.Tenant == "shed-me" && tn.Shed == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("tenant shed-me with Shed=1 not in stats: %+v", stats.Tenants)
	}
}

// TestAdmissionDrainingReturns503 pins graceful shutdown: a request queued
// behind a busy server is flushed with an immediate structured 503
// ("draining") when the controller drains, and later arrivals fail fast
// the same way.
func TestAdmissionDrainingReturns503(t *testing.T) {
	s := testServer(t)
	s.Admission = serve.Config{MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: 30 * time.Second}
	h := s.Handler()

	release, err := s.admission.Admit(context.Background(), "hog", serve.PriorityNormal)
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	type result struct{ rec *httptest.ResponseRecorder }
	done := make(chan result, 1)
	go func() {
		done <- result{postDiscover(t, h, paperRequest(), nil)}
	}()
	waitFor(t, func() bool { return s.admission.Snapshot().QueueDepth == 1 })

	s.admission.Drain()

	res := <-done
	if res.rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued request status = %d, want 503 (body %s)", res.rec.Code, res.rec.Body.String())
	}
	var apiErr api.Error
	if err := json.Unmarshal(res.rec.Body.Bytes(), &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Code != api.CodeDraining {
		t.Errorf("code = %q, want %q", apiErr.Code, api.CodeDraining)
	}
	if rec := postDiscover(t, h, paperRequest(), nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("post-drain request status = %d, want 503", rec.Code)
	}
}

// TestPriorityHeaderValidation pins that an unknown X-Prism-Priority value
// is a structured 400 with the invalid_request code, before any round
// work starts.
func TestPriorityHeaderValidation(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	rec := postDiscover(t, h, paperRequest(), map[string]string{api.PriorityHeader: "urgent"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	var apiErr api.Error
	if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Code != api.CodeInvalidRequest {
		t.Errorf("code = %q, want %q", apiErr.Code, api.CodeInvalidRequest)
	}
}

// TestParallelismValidation pins the API-boundary handling of
// req.Parallelism: negative values are a structured invalid_request, and
// oversized values are clamped to the server cap instead of spawning an
// unbounded validation pool.
func TestParallelismValidation(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	req := paperRequest()
	req.Parallelism = -2
	rec := postDiscover(t, h, req, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", rec.Code, rec.Body.String())
	}
	var resp DiscoverResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != api.CodeInvalidRequest {
		t.Errorf("code = %q, want %q", resp.Code, api.CodeInvalidRequest)
	}

	// The wire code round-trips to the sentinel, like every other code.
	if api.SentinelForCode(resp.Code) != api.ErrInvalidRequest {
		t.Errorf("SentinelForCode(%q) != ErrInvalidRequest", resp.Code)
	}

	// Oversized parallelism is clamped, not rejected.
	s.MaxParallelism = 3
	big := paperRequest()
	big.Parallelism = 4096
	opts, err := s.roundOptions(big)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Parallelism != 3 {
		t.Errorf("clamped parallelism = %d, want 3", opts.Parallelism)
	}
}

// TestStatsEndpoint pins the observability surface: after one admitted
// round, GET /api/v1/stats reports the admission counters, the tenant
// breakdown, one latency entry per priority class, and the worker-pool
// gauge.
func TestStatsEndpoint(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	if rec := postDiscover(t, h, paperRequest(), map[string]string{api.TenantHeader: "acme"}); rec.Code != http.StatusOK {
		t.Fatalf("discover status = %d: %s", rec.Code, rec.Body.String())
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var stats api.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission.MaxConcurrent <= 0 || stats.Admission.MaxQueue <= 0 {
		t.Errorf("budgets not echoed: %+v", stats.Admission)
	}
	if stats.Admission.Admitted < 1 {
		t.Errorf("admitted = %d, want >= 1", stats.Admission.Admitted)
	}
	if len(stats.Tenants) == 0 || stats.Tenants[0].Tenant != "acme" {
		t.Errorf("tenants = %+v, want acme first (sorted)", stats.Tenants)
	}
	if len(stats.Latency) != 3 {
		t.Fatalf("latency entries = %d, want 3", len(stats.Latency))
	}
	var normal api.LatencyStats
	for _, l := range stats.Latency {
		if l.Priority == api.PriorityNormal {
			normal = l
		}
	}
	if normal.Count < 1 || normal.P50Ms <= 0 {
		t.Errorf("normal-class latency = %+v, want count >= 1 and p50 > 0", normal)
	}
	if stats.Pool.CompletedValidations < 1 {
		t.Errorf("pool completed validations = %d, want >= 1", stats.Pool.CompletedValidations)
	}

	// Wrong method gets the structured 405.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/stats", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats = %d, want 405", rec.Code)
	}
}

// wedgedWriter emulates a consumer whose socket never drains: Write
// blocks until the armed write deadline passes, then fails with a timeout
// — exactly what net/http's ResponseController produces for a wedged
// connection.
type wedgedWriter struct {
	mu       sync.Mutex
	deadline time.Time
	header   http.Header
	wrote    int
}

func (w *wedgedWriter) Header() http.Header {
	if w.header == nil {
		w.header = make(http.Header)
	}
	return w.header
}

func (w *wedgedWriter) WriteHeader(int) {}

func (w *wedgedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	d := w.deadline
	w.wrote++
	w.mu.Unlock()
	if d.IsZero() {
		// No deadline armed: simulate an indefinitely wedged socket, but
		// bail out after a generous bound so a regression fails instead of
		// hanging the test binary.
		d = time.Now().Add(30 * time.Second)
	}
	time.Sleep(time.Until(d))
	return 0, os.ErrDeadlineExceeded
}

func (w *wedgedWriter) SetWriteDeadline(t time.Time) error {
	w.mu.Lock()
	w.deadline = t
	w.mu.Unlock()
	return nil
}

// TestStreamStallCancelsOwnRound pins the backpressure contract: a
// streaming consumer that cannot complete a single write within
// StreamWriteTimeout has its round cancelled and counted as a stall —
// and only its own round: a healthy stream right after completes
// normally.
func TestStreamStallCancelsOwnRound(t *testing.T) {
	s := testServer(t)
	s.StreamBuffer = 1
	s.StreamWriteTimeout = 50 * time.Millisecond
	h := s.Handler()

	body, err := json.Marshal(paperRequest())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w := &wedgedWriter{}
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/api/v1/discover/stream", strings.NewReader(string(body))))
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("stalled stream did not cancel its round")
	}
	if got := s.streamStalls.Load(); got != 1 {
		t.Errorf("streamStalls = %d, want 1", got)
	}

	// The stall cost exactly that round: a healthy consumer streams to
	// completion afterwards.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/discover/stream", strings.NewReader(string(body))))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthy stream status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"event":"done"`) {
		t.Errorf("healthy stream missing done event: %s", rec.Body.String())
	}
	if got := s.streamStalls.Load(); got != 1 {
		t.Errorf("streamStalls after healthy stream = %d, want still 1", got)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
