package server

// GET /api/v1/metrics: the Prometheus text exposition of the serving
// tier. Serve-tier values that already back /api/v1/stats (admission
// counters, latency quantiles, pool gauges, stream stalls) are exported
// through scrape-time collectors reading the same live sources, so the
// two endpoints cannot disagree; library round metrics (prism_rounds_*,
// validation and memory counters) come from the process-default obs
// registry populated by internal/discovery.

import (
	"context"
	"net/http"
	"time"

	"prism"
	"prism/api"
	"prism/internal/obs"
	"prism/internal/sched"
)

// tenantKey carries the admitted tenant through the request context so
// round handlers can label per-tenant metric series.
type tenantKey struct{}

// tenantFrom returns the tenant the admission middleware stored in ctx,
// or the default tenant for paths that bypass admission.
func tenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantKey{}).(string); ok && t != "" {
		return t
	}
	return api.DefaultTenant
}

// initMetrics wires the per-server metrics registry. Each Server owns
// its own registry (tests mount many servers in one process; sharing
// obs.Default would cross their collector output), registered once from
// init.
func (s *Server) initMetrics() {
	s.obsReg = obs.NewRegistry()
	s.obsReg.RegisterCollector(s.collectServe)
	s.tenantSeen = make(map[string]struct{})
}

// maxTenantSeries caps how many distinct tenant label values the
// per-tenant round series may use. Registry series are memoized for the
// life of the process, and the tenant header is client-supplied, so
// without a cap any client minting unique header values would grow
// server memory and scrape cardinality without bound. Tenants beyond
// the cap fold into tenantOverflow.
const maxTenantSeries = 64

// tenantOverflow is the tenant label value aggregating rounds from
// tenants beyond the maxTenantSeries cardinality cap.
const tenantOverflow = "other"

// tenantLabelValue returns the metric label value for a tenant: the
// tenant itself while fewer than maxTenantSeries distinct values have
// been seen, tenantOverflow afterwards. A tenant admitted once keeps
// its own series forever, so a scrape never sees a value move between
// label sets.
func (s *Server) tenantLabelValue(tenant string) string {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if _, ok := s.tenantSeen[tenant]; ok {
		return tenant
	}
	if len(s.tenantSeen) >= maxTenantSeries {
		return tenantOverflow
	}
	s.tenantSeen[tenant] = struct{}{}
	return tenant
}

// handleMetrics serves GET /api/v1/metrics. The response concatenates
// the server's own registry (serve-tier collectors, per-tenant series)
// with the process-default registry (library round metrics); the family
// names are disjoint, so the concatenation is a valid exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "use GET")
		return
	}
	w.Header().Set("Content-Type", obs.ContentType)
	if err := s.obsReg.WritePrometheus(w); err != nil {
		return
	}
	_ = obs.Default.WritePrometheus(w)
}

// recordRoundMetrics folds one finished round into the per-tenant
// series of the server registry. Called once per round from the
// discover, stream and refine handlers — never inside the round.
func (s *Server) recordRoundMetrics(ctx context.Context, report *prism.Report) {
	if report == nil {
		return
	}
	l := obs.Label{Key: "tenant", Value: s.tenantLabelValue(tenantFrom(ctx))}
	s.obsReg.Counter("prism_tenant_rounds_total",
		"Discovery rounds completed, by tenant.", l).Inc()
	s.obsReg.Counter("prism_tenant_validations_total",
		"Filter validations executed, by tenant.", l).Add(int64(report.Validations))
	s.obsReg.Counter("prism_tenant_rows_scanned_total",
		"Base-table rows read by validations, by tenant.", l).Add(int64(report.Cost.RowsScanned))
	s.obsReg.Gauge("prism_tenant_memory_peak_intermediate_bytes",
		"High-water mark of a join step's materialised intermediate rows, by tenant.", l).
		SetMax(int64(report.Cost.PeakIntermediateBytes))
	s.obsReg.Gauge("prism_tenant_memory_peak_scratch_bytes",
		"High-water mark of one execution state's pooled scratch arenas, by tenant.", l).
		SetMax(int64(report.Cost.ScratchBytes))
}

// collectServe is the scrape-time collector mirroring handleStats: it
// reads the admission controller snapshot, the latency sketches, the
// scheduler pool gauge and the stream-stall counter at scrape time.
func (s *Server) collectServe() []obs.Sample {
	snap := s.admission.Snapshot()
	counter := func(name, help string, v int64, labels ...obs.Label) obs.Sample {
		return obs.Sample{Name: name, Help: help, Type: obs.TypeCounter, Labels: labels, Value: float64(v)}
	}
	gauge := func(name, help string, v float64, labels ...obs.Label) obs.Sample {
		return obs.Sample{Name: name, Help: help, Type: obs.TypeGauge, Labels: labels, Value: v}
	}
	out := []obs.Sample{
		gauge("prism_serve_uptime_seconds", "Seconds since the server started.",
			time.Since(s.started).Seconds()),
		gauge("prism_serve_inflight", "Rounds currently admitted and running.",
			float64(snap.InFlight)),
		gauge("prism_serve_queue_depth", "Rounds waiting in the admission queue.",
			float64(snap.QueueDepth)),
		counter("prism_serve_admitted_total", "Rounds admitted by the controller.", snap.Admitted),
		counter("prism_serve_shed_total", "Rounds shed with 429 by the controller.", snap.Shed),
		counter("prism_serve_drained_total", "Rounds drained during shutdown.", snap.Drained),
		counter("prism_serve_stream_stalls_total",
			"Streaming rounds cancelled because the consumer stalled.", s.streamStalls.Load()),
		counter("prism_serve_panics_total",
			"Handler panics recovered into structured internal errors.", s.panics.Load()),
	}
	ready, _ := s.health.Ready()
	readyVal := 0.0
	if ready {
		readyVal = 1
	}
	out = append(out, gauge("prism_ready",
		"Whether the server passes its readiness probe (1 ready, 0 degraded).", readyVal))
	for _, t := range snap.Tenants {
		l := obs.Label{Key: "tenant", Value: t.Tenant}
		out = append(out,
			counter("prism_serve_tenant_admitted_total", "Rounds admitted, by tenant.", t.Admitted, l),
			counter("prism_serve_tenant_shed_total", "Rounds shed, by tenant.", t.Shed, l),
			gauge("prism_serve_tenant_inflight", "Rounds running, by tenant.", float64(t.InFlight), l),
			gauge("prism_serve_tenant_queued", "Rounds queued, by tenant.", float64(t.Queued), l),
		)
	}
	for _, lat := range s.latencies.Snapshot() {
		pl := obs.Label{Key: "priority", Value: lat.Priority.String()}
		q := func(quant string, v float64) obs.Sample {
			return obs.Sample{
				Name: "prism_serve_latency_ms", Type: obs.TypeSummary,
				Help:   "Round latency quantiles over the sliding window, by priority class, in milliseconds.",
				Labels: []obs.Label{pl, {Key: "quantile", Value: quant}}, Value: v,
			}
		}
		out = append(out, q("0.5", lat.P50Ms), q("0.99", lat.P99Ms),
			obs.Sample{Name: "prism_serve_latency_ms_count", Type: obs.TypeSummary,
				Labels: []obs.Label{pl}, Value: float64(lat.Count)})
	}
	pool := sched.PoolSnapshot()
	out = append(out,
		gauge("prism_sched_live_workers", "Validation workers currently alive.", float64(pool.LiveWorkers)),
		gauge("prism_sched_active_validations", "Validations executing right now.", float64(pool.ActiveValidations)),
		counter("prism_sched_completed_validations_total", "Validations completed by the worker pools.",
			pool.CompletedValidations),
		gauge("prism_sched_utilization", "Active validations over live workers (0..1).", pool.Utilization()),
	)
	return out
}
