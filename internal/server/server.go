// Package server implements the web demonstration of Prism described in §3:
// a Configuration section (source database, number of target columns,
// number of sample constraints), a Description section (the sample and
// metadata constraint grids), and a Result section listing every discovered
// schema mapping query with its SQL text, result preview and query-graph
// explanation.
//
// It exposes server-rendered HTML (GET /, POST /discover) and the
// versioned JSON API of the prism/api package, mounted canonically under
// /api/v1/* with the historical unversioned /api/* routes kept as
// deprecated aliases of the same handlers (marked with a Deprecation
// header). Engines are served from a prism.Registry, so concurrent
// requests share preprocessed engines, every round runs under the
// request's context (an abandoned connection cancels its round
// mid-validation), and POST /api/v1/discover/stream pushes mappings and
// progress incrementally as NDJSON or SSE. The official Go client for
// this surface is the prism/client package.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prism"
	"prism/api"
	"prism/internal/discovery"
	"prism/internal/exec"
	"prism/internal/explain"
	"prism/internal/mem"
	"prism/internal/obs"
	"prism/internal/serve"
)

// Server is the demo web application.
type Server struct {
	// Registry serves the engines; the bundled data sets are pre-registered
	// and built lazily on first use.
	Registry *prism.Registry
	// TimeLimit is the per-round discovery budget (default 60s, as in the
	// paper's demo).
	TimeLimit time.Duration
	// MaxGraphs bounds the number of inline SVG explanations rendered.
	MaxGraphs int
	// SessionTTL evicts refinement sessions idle for longer (default 15
	// minutes); MaxSessions bounds live sessions, evicting the least
	// recently used beyond it (default 64).
	SessionTTL  time.Duration
	MaxSessions int
	// ShutdownGrace bounds how long ListenAndServe waits for in-flight
	// requests to drain after its context is cancelled (0 = TimeLimit plus
	// slack, so a round that started before the signal can finish).
	ShutdownGrace time.Duration
	// Admission tunes the multi-tenant admission controller gating every
	// discovery round (zero fields take the serve package defaults).
	Admission serve.Config
	// MaxParallelism caps the per-round validation parallelism a request
	// may ask for (default 4×GOMAXPROCS); negative requests are rejected
	// with a structured invalid_request error.
	MaxParallelism int
	// StreamBuffer and StreamWriteTimeout tune the backpressure of
	// streaming responses: a consumer that can neither drain StreamBuffer
	// pending events nor complete a write within StreamWriteTimeout has its
	// round cancelled — only its own round (defaults 64 events, 10s).
	StreamBuffer       int
	StreamWriteTimeout time.Duration
	// Health tunes the readiness tracker behind GET /api/v1/readyz
	// (zero fields take the serve package defaults).
	Health serve.HealthConfig

	initOnce     sync.Once
	admission    *serve.Controller
	latencies    *serve.Latencies
	health       *serve.Health
	panics       atomic.Int64
	streamStalls atomic.Int64
	started      time.Time
	sessions     *sessionStore
	obsReg       *obs.Registry
	tenantMu     sync.Mutex
	tenantSeen   map[string]struct{}
	tmpl         *template.Template
}

// New creates the demo server. Engines for the bundled data sets are built
// lazily on first use so start-up stays instant.
func New() *Server {
	return &Server{
		Registry:    prism.NewRegistry(),
		TimeLimit:   60 * time.Second,
		MaxGraphs:   3,
		SessionTTL:  15 * time.Minute,
		MaxSessions: 64,
		tmpl:        template.Must(template.New("page").Parse(pageTemplate)),
	}
}

// RegisterDatabase installs a custom database under the given name,
// alongside the bundled synthetic ones.
func (s *Server) RegisterDatabase(name string, db *mem.Database) {
	s.Registry.RegisterDatabase(name, db)
}

// engine resolves a registry engine and feeds the readiness tracker:
// a registered engine that fails to build (snapshot corruption, a bad
// ingest) is a server-side failure that should eventually flip readyz,
// while an unknown database name is a client mistake and counts for
// nothing.
func (s *Server) engine(name string) (*prism.Engine, error) {
	eng, err := s.Registry.Get(name)
	if s.health != nil {
		switch {
		case err == nil:
			s.health.ReportSuccess("engine")
		case !errors.Is(err, prism.ErrUnknownDatabase):
			s.health.ReportFailure("engine")
		}
	}
	return eng, err
}

// Handler returns the HTTP handler of the demo. The JSON API is mounted
// canonically under api.PathPrefix (/api/v1) and aliased — handler for
// handler — under the deprecated unversioned /api prefix, whose responses
// carry a Deprecation header pointing at the successor.
func (s *Server) Handler() http.Handler {
	s.init()
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.recovered(s.handleIndex))
	mux.HandleFunc("/discover", s.recovered(s.admitted(serve.PriorityNormal, s.handleDiscoverForm)))
	// Method-less fallbacks so wrong-method requests get the structured
	// JSON 405 like every other API endpoint, not net/http's text page.
	methodNotAllowed := func(allowed string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "use "+allowed)
		}
	}
	mount := func(prefix string, wrap func(http.HandlerFunc) http.HandlerFunc) {
		mux.HandleFunc(prefix+api.HealthzPath, wrap(s.handleHealthz))
		mux.HandleFunc(prefix+api.ReadyzPath, wrap(s.handleReadyz))
		mux.HandleFunc(prefix+"/datasets", wrap(s.handleDatasets))
		mux.HandleFunc(prefix+"/sample", wrap(s.handleSample))
		mux.HandleFunc(prefix+"/stats", wrap(s.handleStats))
		mux.HandleFunc(prefix+"/metrics", wrap(s.handleMetrics))
		// Round-running endpoints pass the admission controller; one-shot
		// discovers default to the normal class, session refine rounds (a
		// human waiting) to interactive. The priority header can override.
		mux.HandleFunc(prefix+"/discover", wrap(s.admitted(serve.PriorityNormal, s.handleDiscoverAPI)))
		mux.HandleFunc(prefix+"/discover/stream", wrap(s.admitted(serve.PriorityNormal, s.handleDiscoverStream)))
		mux.HandleFunc("POST "+prefix+"/session", wrap(s.handleSessionCreate))
		mux.HandleFunc("GET "+prefix+"/session/{id}", wrap(s.handleSessionInfo))
		mux.HandleFunc("DELETE "+prefix+"/session/{id}", wrap(s.handleSessionDelete))
		mux.HandleFunc("POST "+prefix+"/session/{id}/refine", wrap(s.admitted(serve.PriorityInteractive, s.handleSessionRefine)))
		mux.HandleFunc(prefix+"/session", wrap(methodNotAllowed("POST")))
		mux.HandleFunc(prefix+"/session/{id}", wrap(methodNotAllowed("GET or DELETE")))
		mux.HandleFunc(prefix+"/session/{id}/refine", wrap(methodNotAllowed("POST")))
	}
	// Every route sits behind the panic barrier: a panicking handler
	// answers a structured 500 and the process keeps serving.
	mount(api.PathPrefix, s.recovered)
	mount(api.LegacyPathPrefix, func(h http.HandlerFunc) http.HandlerFunc {
		return deprecatedRoute(s.recovered(h))
	})
	return mux
}

// deprecatedRoute marks a legacy unversioned /api/* response as deprecated
// (RFC 8594-style headers); the payloads are byte-identical to /api/v1/*.
func deprecatedRoute(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+api.PathPrefix+">; rel=\"successor-version\"")
		h(w, r)
	}
}

// ListenAndServe starts the demo on the given address and blocks until the
// listener fails or ctx is cancelled. On cancellation it shuts down
// gracefully: the listener closes immediately, in-flight discovery rounds
// keep their request contexts and drain for up to ShutdownGrace (default:
// the per-round TimeLimit plus scheduling slack, so a round that started
// before the signal can finish), then the remaining connections are
// closed. A clean drain returns nil.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Stop admitting new rounds before the listener closes: queued
	// requests are flushed with an immediate 503 (draining) and new
	// arrivals fail fast, while rounds already running keep their request
	// contexts and finish inside the grace window below. Readiness flips
	// first so load balancers stop routing here.
	s.health.SetDraining()
	s.admission.Drain()
	grace := s.ShutdownGrace
	if grace <= 0 {
		grace = s.TimeLimit + 10*time.Second
		if s.TimeLimit <= 0 {
			grace = 30 * time.Second
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
		return err
	}
	return nil
}

// ---------------------------------------------------------------------------
// Request/response types of the JSON API
// ---------------------------------------------------------------------------

// The wire types are defined once, in the prism/api package (the versioned
// v1 wire format shared with the prism/client SDK); the aliases below keep
// this package's historical names working.
type (
	// DiscoverRequest is the JSON body of POST /api/v1/discover and
	// POST /api/v1/discover/stream.
	DiscoverRequest = api.DiscoverRequest
	// MappingResponse describes one discovered schema mapping query.
	MappingResponse = api.Mapping
	// CacheResponse reports a session round's filter-outcome cache counters.
	CacheResponse = api.CacheStats
	// DiscoverResponse is the JSON answer of POST /api/v1/discover and of
	// session refine rounds.
	DiscoverResponse = api.DiscoverResponse
	// StreamEventResponse is one NDJSON line (or SSE data payload) of
	// POST /api/v1/discover/stream.
	StreamEventResponse = api.StreamEvent
	// apiError is the uniform structured error body of the JSON API: every
	// failure is {"error": ..., "code": ...}, never a bare non-JSON status.
	apiError = api.Error
)

// errorCode classifies an error for the structured JSON error responses;
// the table lives in prism/api so clients can map codes back to sentinels.
func errorCode(err error) string { return api.CodeForError(err) }

func writeAPIError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, apiError{Message: msg, Code: code})
}

// checkExecutor validates an executor name before a round starts, so the
// failure surfaces as a structured 4xx instead of a mid-round error.
func checkExecutor(name string) error {
	if name == "" {
		return nil
	}
	key := exec.CanonicalName(name)
	for _, n := range exec.Names() {
		if n == key {
			return nil
		}
	}
	return fmt.Errorf("%w %q (registered: %v)", exec.ErrUnknownExecutor, name, exec.Names())
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, api.DatasetsResponse{Datasets: s.Registry.Names()})
}

// handleSample serves GET /api/sample?db=NAME&table=NAME&limit=N: a
// preview of the named source table, for exploring a database before
// writing constraints against it. Unknown dataset and table names come
// back as structured JSON errors with a classifying code, not bare
// statuses.
func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "use GET")
		return
	}
	eng, err := s.engine(r.URL.Query().Get("db"))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, errorCode(err), err.Error())
		return
	}
	table := r.URL.Query().Get("table")
	limit := 10
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			writeAPIError(w, http.StatusBadRequest, api.CodeInvalidRequest,
				fmt.Sprintf("sample limit must be a positive integer, got %q", raw))
			return
		}
		limit = n
	}
	rows, err := eng.SampleRows(table, limit)
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, errorCode(err), err.Error())
		return
	}
	out := make([][]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for ci, v := range row {
			cells[ci] = v.String()
		}
		out[i] = cells
	}
	writeJSON(w, http.StatusOK, api.SampleResponse{Table: table, Rows: out})
}

func (s *Server) handleDiscoverAPI(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "use POST")
		return
	}
	var req DiscoverRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, DiscoverResponse{Error: "invalid JSON: " + err.Error(), Code: api.CodeBadRequest})
		return
	}
	resp, status := s.discover(r.Context(), req, false)
	writeJSON(w, status, resp)
}

// round holds the validated inputs of one discovery round.
type round struct {
	eng  *prism.Engine
	spec *prism.Spec
	opts discovery.Options
}

// specFromRequest assembles the constraint specification of a request:
// either the structured Spec tree or the demo's string grids, never both.
func specFromRequest(structured *api.Spec, numColumns int, samples [][]string, metadata []string) (*prism.Spec, error) {
	if structured != nil {
		if numColumns != 0 || len(samples) > 0 || len(metadata) > 0 {
			return nil, fmt.Errorf("send either a structured spec or the numColumns/samples grids, not both")
		}
		return structured.Decode()
	}
	if len(metadata) == 0 {
		metadata = nil
	}
	return prism.ParseConstraints(numColumns, samples, metadata)
}

// prepare resolves the engine, decodes the constraint specification and
// assembles the discovery options for a request.
func (s *Server) prepare(req DiscoverRequest) (*round, error) {
	eng, err := s.engine(req.Database)
	if err != nil {
		return nil, err
	}
	spec, err := specFromRequest(req.Spec, req.NumColumns, req.Samples, req.Metadata)
	if err != nil {
		return nil, err
	}
	opts, err := s.roundOptions(req)
	if err != nil {
		return nil, err
	}
	return &round{eng: eng, spec: spec, opts: opts}, nil
}

// roundOptions assembles (and validates) the discovery options shared by
// the discover and session handlers.
func (s *Server) roundOptions(req DiscoverRequest) (discovery.Options, error) {
	if err := checkExecutor(req.Executor); err != nil {
		return discovery.Options{}, err
	}
	// Validate parallelism at the boundary: a negative value is a client
	// bug (structured invalid_request, not a silent default), and the
	// server caps the pool size a request may demand.
	parallelism := req.Parallelism
	if parallelism < 0 {
		return discovery.Options{}, fmt.Errorf("%w: parallelism must be >= 0, got %d",
			api.ErrInvalidRequest, parallelism)
	}
	if limit := s.maxParallelism(); parallelism > limit {
		parallelism = limit
	}
	policy := discovery.PolicyBayes
	if req.Policy != "" {
		policy = discovery.Policy(req.Policy)
	}
	timeLimit := s.TimeLimit
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; timeLimit <= 0 || d < timeLimit {
			timeLimit = d
		}
	}
	return discovery.Options{
		TimeLimit:      timeLimit,
		Policy:         policy,
		Parallelism:    parallelism,
		Executor:       req.Executor,
		IncludeResults: true,
		ResultLimit:    10,
		MaxResults:     req.MaxResults,
	}, nil
}

// requestContext derives the per-round context: the request's context (so
// an abandoned connection cancels its round) bounded by the time budget.
func (rd *round) requestContext(parent context.Context) (context.Context, context.CancelFunc) {
	if rd.opts.TimeLimit > 0 {
		// Grace on top of the budget: the scheduler handles the limit itself
		// and reports a clean timeout; the deadline is a backstop.
		return context.WithTimeout(parent, rd.opts.TimeLimit+5*time.Second)
	}
	return context.WithCancel(parent)
}

// mappingResponse converts one discovered mapping for JSON transport.
func mappingResponse(m discovery.Mapping) MappingResponse {
	mr := MappingResponse{SQL: m.SQL, Tables: m.Candidate.Tree.Tables}
	for _, ref := range m.Plan.Project {
		mr.Columns = append(mr.Columns, ref.String())
	}
	if m.Result != nil {
		for _, row := range m.Result.Rows {
			cells := make([]string, len(row))
			for ci, v := range row {
				cells[ci] = v.String()
			}
			mr.ResultRows = append(mr.ResultRows, cells)
		}
	}
	return mr
}

// discoverResponse converts a report for JSON transport.
func (s *Server) discoverResponse(req DiscoverRequest, report *discovery.Report, err error, spec *prism.Spec, withGraphs bool) DiscoverResponse {
	resp := DiscoverResponse{Database: req.Database}
	if report != nil {
		resp.Executor = report.Executor
		resp.Candidates = report.CandidatesEnumerated
		resp.Filters = report.FiltersGenerated
		resp.Validations = report.Validations
		resp.ElapsedMS = report.Elapsed.Milliseconds()
		resp.TimedOut = report.TimedOut
		resp.Failure = report.Failure()
		if !report.Cache.IsZero() {
			resp.Cache = &CacheResponse{
				Hits:   report.Cache.Hits,
				Misses: report.Cache.Misses,
				Stores: report.Cache.Stores,
			}
		}
	}
	if err != nil {
		resp.Error = err.Error()
		resp.Code = errorCode(err)
		return resp
	}
	for i, m := range report.Mappings {
		mr := mappingResponse(m)
		if withGraphs && i < s.MaxGraphs {
			g := explain.Build(m.Candidate, spec, m.SQL, explain.AllConstraints())
			mr.GraphSVG = g.SVG()
		}
		resp.Mappings = append(resp.Mappings, mr)
	}
	return resp
}

// discover executes a blocking discovery round for the JSON and HTML
// handlers.
func (s *Server) discover(ctx context.Context, req DiscoverRequest, withGraphs bool) (DiscoverResponse, int) {
	rd, err := s.prepare(req)
	if err != nil {
		return DiscoverResponse{Database: req.Database, Error: err.Error(), Code: errorCode(err)}, http.StatusBadRequest
	}
	ctx, cancel := rd.requestContext(ctx)
	defer cancel()
	report, err := rd.eng.Discover(ctx, rd.spec, rd.opts)
	s.recordRoundMetrics(ctx, report)
	resp := s.discoverResponse(req, report, err, rd.spec, withGraphs)
	if err != nil {
		return resp, http.StatusUnprocessableEntity
	}
	return resp, http.StatusOK
}

// handleDiscoverStream streams a discovery round incrementally. The
// response is NDJSON (application/x-ndjson), one StreamEventResponse per
// line, unless the client asks for Server-Sent Events with
// Accept: text/event-stream. Mappings are pushed as soon as the scheduler
// confirms them; the final event carries the full report.
//
// Writes go through a bounded serve.Sink under a per-write deadline: a
// consumer that can neither drain the buffer nor complete a write within
// StreamWriteTimeout has its round cancelled — only its own round, so a
// stalled reader never ties up a worker slot or another tenant's stream.
func (s *Server) handleDiscoverStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed, "use POST")
		return
	}
	var req DiscoverRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, DiscoverResponse{Error: "invalid JSON: " + err.Error(), Code: api.CodeBadRequest})
		return
	}
	// Bad inputs (unknown dataset or executor, malformed constraints) fail
	// as a structured 400 here, before the 200 streaming header goes out.
	rd, err := s.prepare(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, DiscoverResponse{Database: req.Database, Error: err.Error(), Code: errorCode(err)})
		return
	}
	ctx, cancel := rd.requestContext(r.Context())
	defer cancel()

	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)

	sink := serve.NewSink(w, serve.SinkOptions{
		Buffer:           s.StreamBuffer,
		WriteTimeout:     s.StreamWriteTimeout,
		SetWriteDeadline: func(t time.Time) error { return rc.SetWriteDeadline(t) },
		Flush: func() {
			if flusher != nil {
				flusher.Flush()
			}
		},
		OnStall: func() {
			// The consumer cannot keep up: cancel this round (and only
			// this round) and count the stall for /stats.
			s.streamStalls.Add(1)
			cancel()
		},
	})
	// The event loop below is the only producer, so Close after it ends
	// cannot race Send.
	defer sink.Close()

	write := func(ev StreamEventResponse) {
		payload, err := json.Marshal(ev)
		if err != nil {
			return
		}
		var framed []byte
		if sse {
			framed = fmt.Appendf(nil, "event: %s\ndata: %s\n\n", ev.Event, payload)
		} else {
			framed = append(payload, '\n')
		}
		sink.Send(framed)
	}

	for ev := range rd.eng.DiscoverStream(ctx, rd.spec, rd.opts) {
		if ferr := faultStreamCut.Hit(); ferr != nil {
			// Injected connection drop: end the response mid-stream with
			// no done event. The deferred cancel unblocks the producing
			// goroutine and the deferred Close drains the sink.
			return
		}
		out := StreamEventResponse{
			Event:       string(ev.Kind),
			Candidates:  ev.Progress.CandidatesEnumerated,
			Filters:     ev.Progress.FiltersGenerated,
			Validations: ev.Progress.Validations,
			Confirmed:   ev.Progress.Confirmed,
			Pruned:      ev.Progress.Pruned,
			Unresolved:  ev.Progress.Unresolved,
			ElapsedMS:   ev.Progress.Elapsed.Milliseconds(),
			RemainingMS: ev.Progress.TimeRemaining.Milliseconds(),
		}
		switch ev.Kind {
		case discovery.EventMapping:
			mr := mappingResponse(*ev.Mapping)
			out.Mapping = &mr
		case discovery.EventDone:
			s.recordRoundMetrics(ctx, ev.Report)
			resp := s.discoverResponse(req, ev.Report, ev.Err, rd.spec, false)
			out.Result = &resp
		}
		write(out)
	}
}

// ---------------------------------------------------------------------------
// HTML handlers
// ---------------------------------------------------------------------------

// pageData feeds the HTML template.
type pageData struct {
	Datasets []string
	Request  DiscoverRequest
	// Raw form text (one sample row per line, cells separated by '|').
	SamplesText  string
	MetadataText string
	Response     *DiscoverResponse
	Graphs       []template.HTML
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	data := &pageData{
		Datasets:     s.Registry.Names(),
		Request:      DiscoverRequest{Database: "mondial", NumColumns: 3},
		SamplesText:  "California || Nevada | Lake Tahoe | ",
		MetadataText: " |  | DataType=='decimal' AND MinValue>='0'",
	}
	s.render(w, data)
}

func (s *Server) handleDiscoverForm(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, "bad form: "+err.Error(), http.StatusBadRequest)
		return
	}
	numColumns, _ := strconv.Atoi(r.FormValue("columns"))
	samplesText := r.FormValue("samples")
	metadataText := r.FormValue("metadata")
	req := DiscoverRequest{
		Database:   r.FormValue("database"),
		NumColumns: numColumns,
		Samples:    parseGridText(samplesText, numColumns),
		Policy:     r.FormValue("policy"),
	}
	if strings.TrimSpace(metadataText) != "" {
		req.Metadata = padRow(splitCells(metadataText), numColumns)
	}
	resp, _ := s.discover(r.Context(), req, true)
	data := &pageData{
		Datasets:     s.Registry.Names(),
		Request:      req,
		SamplesText:  samplesText,
		MetadataText: metadataText,
		Response:     &resp,
	}
	for _, m := range resp.Mappings {
		if m.GraphSVG != "" {
			data.Graphs = append(data.Graphs, template.HTML(m.GraphSVG)) //nolint:gosec // SVG is generated by this binary from escaped labels.
		}
	}
	s.render(w, data)
}

func (s *Server) render(w http.ResponseWriter, data *pageData) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := s.tmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// parseGridText converts the textarea form of the sample grid (one row per
// line, cells separated by '|') into rows of exactly numColumns cells.
func parseGridText(text string, numColumns int) [][]string {
	var rows [][]string
	for _, line := range strings.Split(text, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		rows = append(rows, padRow(splitCells(line), numColumns))
	}
	return rows
}

func splitCells(line string) []string {
	parts := strings.Split(line, "|")
	// The constraint language uses "||" for disjunction; re-join cells that
	// were split apart by it (an empty part between two non-empty parts).
	var cells []string
	for i := 0; i < len(parts); i++ {
		cell := parts[i]
		for i+2 <= len(parts)-1 && parts[i+1] == "" {
			// "a || b" splits into ["a ", "", " b"]; merge back.
			cell = cell + "||" + parts[i+2]
			i += 2
		}
		cells = append(cells, strings.TrimSpace(cell))
	}
	return cells
}

func padRow(cells []string, n int) []string {
	if n <= 0 {
		return cells
	}
	out := make([]string, n)
	for i := 0; i < n && i < len(cells); i++ {
		out[i] = cells[i]
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

const pageTemplate = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>Prism — Multiresolution Schema Mapping</title>
<style>
body { font-family: Helvetica, Arial, sans-serif; margin: 2rem; max-width: 70rem; }
section { border: 1px solid #ccc; border-radius: 6px; padding: 1rem; margin-bottom: 1.5rem; }
h2 { margin-top: 0; }
textarea, input, select { font-family: monospace; width: 100%; box-sizing: border-box; }
table { border-collapse: collapse; margin: 0.5rem 0; }
td, th { border: 1px solid #999; padding: 2px 8px; }
pre.sql { background: #f4f4f4; padding: 0.5rem; overflow-x: auto; }
.stats { color: #555; font-size: 0.9rem; }
.failure { color: #a00; font-weight: bold; }
</style>
</head>
<body>
<h1>Prism — Multiresolution Schema Mapping</h1>

<form method="POST" action="/discover">
<section>
<h2>Configuration</h2>
<label>Source database:
<select name="database">
{{range .Datasets}}<option value="{{.}}" {{if eq . $.Request.Database}}selected{{end}}>{{.}}</option>{{end}}
</select></label>
<label>Number of columns in the target schema:
<input type="number" name="columns" value="{{.Request.NumColumns}}" min="1" max="8"></label>
<label>Scheduling policy:
<select name="policy">
<option value="bayes">bayes (Prism)</option>
<option value="pathlength">pathlength (Filter baseline)</option>
<option value="random">random</option>
</select></label>
</section>

<section>
<h2>Description</h2>
<p>Sample / result constraints — one row per line, cells separated by <code>|</code>.
Cells accept the multiresolution language: <code>California || Nevada</code>,
<code>&gt;= 100 &amp;&amp; &lt;= 600</code>, <code>[100, 600]</code>, or exact values.</p>
<textarea name="samples" rows="3">{{.SamplesText}}</textarea>
<p>Metadata constraints — a single row, one cell per target column, e.g.
<code>DataType=='decimal' AND MinValue&gt;='0'</code>.</p>
<textarea name="metadata" rows="2">{{.MetadataText}}</textarea>
<p><button type="submit">Start Searching!</button></p>
</section>
</form>

{{if .Response}}
<section>
<h2>Result</h2>
{{if .Response.Error}}<p class="failure">Error: {{.Response.Error}}</p>{{end}}
{{if .Response.Failure}}<p class="failure">{{.Response.Failure}}</p>{{end}}
<p class="stats">candidates: {{.Response.Candidates}} · filters: {{.Response.Filters}} ·
validations: {{.Response.Validations}} · elapsed: {{.Response.ElapsedMS}} ms</p>
{{range $i, $m := .Response.Mappings}}
<h3>Query {{$i}}</h3>
<pre class="sql">{{$m.SQL}}</pre>
{{if $m.ResultRows}}
<table>
<tr>{{range $m.Columns}}<th>{{.}}</th>{{end}}</tr>
{{range $m.ResultRows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}
</table>
{{end}}
{{end}}
{{range .Graphs}}{{.}}{{end}}
</section>
{{end}}
</body>
</html>
`
