package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postStream(t *testing.T, s *Server, body []byte, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/api/discover/stream", bytes.NewReader(body))
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

func TestDiscoverStreamNDJSON(t *testing.T) {
	s := testServer(t)
	body, _ := json.Marshal(paperRequest())
	rec := postStream(t, s, body, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body = %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}

	var events []StreamEventResponse
	for _, line := range strings.Split(strings.TrimSpace(rec.Body.String()), "\n") {
		var ev StreamEventResponse
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) < 4 {
		t.Fatalf("expected a multi-event stream, got %d events", len(events))
	}

	last := events[len(events)-1]
	if last.Event != "done" {
		t.Fatalf("stream must end with done, got %q", last.Event)
	}
	if last.Result == nil || last.Result.Error != "" || len(last.Result.Mappings) == 0 {
		t.Fatalf("done event should carry the full result: %+v", last.Result)
	}

	mappings, doneSeen := 0, false
	for _, ev := range events {
		switch ev.Event {
		case "mapping":
			if doneSeen {
				t.Error("mapping after done")
			}
			if ev.Mapping == nil || !strings.Contains(ev.Mapping.SQL, "SELECT") {
				t.Errorf("mapping event without SQL: %+v", ev)
			}
			mappings++
		case "done":
			doneSeen = true
		}
	}
	if mappings == 0 {
		t.Error("no mappings were streamed incrementally")
	}
	if mappings != len(last.Result.Mappings) {
		t.Errorf("streamed %d mappings, final result has %d", mappings, len(last.Result.Mappings))
	}
}

func TestDiscoverStreamSSE(t *testing.T) {
	s := testServer(t)
	body, _ := json.Marshal(paperRequest())
	rec := postStream(t, s, body, "text/event-stream")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{"event: filters\n", "event: mapping\n", "event: done\n", "data: {"} {
		if !strings.Contains(text, want) {
			t.Errorf("SSE output missing %q:\n%s", want, text)
		}
	}
}

func TestDiscoverStreamErrors(t *testing.T) {
	s := testServer(t)
	if rec := postStream(t, s, []byte("{not json"), ""); rec.Code != http.StatusBadRequest {
		t.Errorf("invalid JSON status = %d", rec.Code)
	}
	body, _ := json.Marshal(DiscoverRequest{Database: "unknown-db", NumColumns: 1, Samples: [][]string{{"x"}}})
	if rec := postStream(t, s, body, ""); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown database status = %d", rec.Code)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/discover/stream", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", rec.Code)
	}
	// An unmatchable constraint still streams, ending in a done event whose
	// result carries the error (headers are already committed by then).
	body, _ = json.Marshal(DiscoverRequest{Database: "mondial", NumColumns: 1, Samples: [][]string{{"Unobtainium Atlantis"}}})
	rec = postStream(t, s, body, "")
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var last StreamEventResponse
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Event != "done" || last.Result == nil || last.Result.Error == "" {
		t.Errorf("failed rounds should end with an error-carrying done event: %+v", last)
	}
}

func TestDiscoverStreamRequestOptions(t *testing.T) {
	s := testServer(t)
	req := paperRequest()
	req.MaxResults = 1
	req.TimeoutMs = 20_000
	req.Parallelism = 2
	body, _ := json.Marshal(req)
	rec := postStream(t, s, body, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	var last StreamEventResponse
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Result == nil || len(last.Result.Mappings) != 1 {
		t.Errorf("maxResults not honoured over the stream: %+v", last.Result)
	}
}
