package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"prism"
	"prism/api"
	"prism/internal/obs"
)

// scrapeMetrics fetches path and parses the Prometheus text exposition
// into series → value (series keys keep their label block verbatim).
func scrapeMetrics(t *testing.T, h http.Handler, path string) (map[string]float64, *httptest.ResponseRecorder) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status=%d body=%s", path, rec.Code, rec.Body)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[cut+1:], "%g", &v); err != nil {
			t.Fatalf("unparseable value in line %q: %v", line, err)
		}
		out[line[:cut]] = v
	}
	return out, rec
}

func getStats(t *testing.T, h http.Handler) api.StatsResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /api/v1/stats: status=%d", rec.Code)
	}
	var stats api.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestMetricsStatsCrossCheck pins the no-drift contract: /api/v1/metrics
// and /api/v1/stats read the same live sources, so after a quiesced round
// the admission, pool, latency and stall values must be identical, and
// the per-tenant aggregates must account the round to its tenant.
func TestMetricsStatsCrossCheck(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	req := paperRequest()
	req.Parallelism = 1
	rec := postDiscover(t, h, req, map[string]string{api.TenantHeader: "acme-metrics"})
	if rec.Code != http.StatusOK {
		t.Fatalf("discover: status=%d body=%s", rec.Code, rec.Body)
	}
	var resp DiscoverResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Validations == 0 {
		t.Fatalf("round validated nothing: %+v", resp)
	}

	metrics, mrec := scrapeMetrics(t, h, "/api/v1/metrics")
	if got := mrec.Header().Get("Content-Type"); got != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", got, obs.ContentType)
	}
	stats := getStats(t, h)

	// No rounds run between the two scrapes, so every shared source must
	// agree exactly.
	same := []struct {
		series string
		want   float64
	}{
		{"prism_serve_admitted_total", float64(stats.Admission.Admitted)},
		{"prism_serve_shed_total", float64(stats.Admission.Shed)},
		{"prism_serve_drained_total", float64(stats.Admission.Drained)},
		{"prism_serve_inflight", float64(stats.Admission.InFlight)},
		{"prism_serve_queue_depth", float64(stats.Admission.QueueDepth)},
		{"prism_serve_stream_stalls_total", float64(stats.StreamStalls)},
		{"prism_sched_completed_validations_total", float64(stats.Pool.CompletedValidations)},
		{"prism_sched_live_workers", float64(stats.Pool.LiveWorkers)},
		{"prism_sched_active_validations", float64(stats.Pool.ActiveValidations)},
	}
	for _, c := range same {
		got, ok := metrics[c.series]
		if !ok {
			t.Errorf("series %s missing from /api/v1/metrics", c.series)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, metrics and stats drifted (stats: %v)", c.series, got, c.want)
		}
	}
	for _, tn := range stats.Tenants {
		key := fmt.Sprintf("prism_serve_tenant_admitted_total{tenant=%q}", tn.Tenant)
		if got := metrics[key]; got != float64(tn.Admitted) {
			t.Errorf("%s = %v, want %v", key, got, tn.Admitted)
		}
	}
	for _, l := range stats.Latency {
		key := fmt.Sprintf("prism_serve_latency_ms_count{priority=%q}", l.Priority)
		if got := metrics[key]; got != float64(l.Count) {
			t.Errorf("%s = %v, want %v", key, got, l.Count)
		}
	}

	// The per-tenant round aggregates account the round we just ran.
	if got := metrics[`prism_tenant_rounds_total{tenant="acme-metrics"}`]; got != 1 {
		t.Errorf("prism_tenant_rounds_total{acme-metrics} = %v, want 1", got)
	}
	if got := metrics[`prism_tenant_validations_total{tenant="acme-metrics"}`]; got != float64(resp.Validations) {
		t.Errorf("prism_tenant_validations_total{acme-metrics} = %v, want %d", got, resp.Validations)
	}

	// Library round counters from the process-default registry (shared
	// across the test binary, hence >=).
	if got := metrics["prism_rounds_total"]; got < 1 {
		t.Errorf("prism_rounds_total = %v, want >= 1", got)
	}
	if got := metrics["prism_validations_total"]; got < float64(resp.Validations) {
		t.Errorf("prism_validations_total = %v, want >= %d", got, resp.Validations)
	}
	if got := metrics["prism_rows_scanned_total"]; got <= 0 {
		t.Errorf("prism_rows_scanned_total = %v, want > 0", got)
	}
}

// TestMetricsCacheCountersMatchSession pins the cache satellite: the
// filter-outcome cache counters a refine response reports are the exact
// delta the prism_filter_cache_* series move by.
func TestMetricsCacheCountersMatchSession(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	sr := createSession(t, h)
	refinePath := "/api/v1/session/" + sr.SessionID + "/refine"

	seed := SessionRefineRequest{
		NumColumns:  3,
		Samples:     [][]string{{"California || Nevada", "Lake Tahoe", ""}},
		Metadata:    []string{"", "", "DataType=='decimal' AND MinValue>='0'"},
		Parallelism: 1,
	}
	var cold DiscoverResponse
	if rec := doJSON(t, h, http.MethodPost, refinePath, seed, &cold); rec.Code != http.StatusOK {
		t.Fatalf("seed round: status=%d body=%s", rec.Code, rec.Body)
	}

	before, _ := scrapeMetrics(t, h, "/api/v1/metrics")
	refine := SessionRefineRequest{
		Delta:       &DeltaRequest{UpdateCells: []CellUpdateRequest{{Row: 0, Col: 2, Cell: "[400, 600]"}}},
		Parallelism: 1,
	}
	var warm DiscoverResponse
	if rec := doJSON(t, h, http.MethodPost, refinePath, refine, &warm); rec.Code != http.StatusOK {
		t.Fatalf("refine round: status=%d body=%s", rec.Code, rec.Body)
	}
	after, _ := scrapeMetrics(t, h, "/api/v1/metrics")

	if warm.Cache == nil || warm.Cache.Hits == 0 {
		t.Fatalf("refine round reused nothing: %+v", warm.Cache)
	}
	deltas := map[string]int{
		"prism_filter_cache_hits_total":   warm.Cache.Hits,
		"prism_filter_cache_misses_total": warm.Cache.Misses,
		"prism_filter_cache_stores_total": warm.Cache.Stores,
	}
	for series, want := range deltas {
		if got := after[series] - before[series]; got != float64(want) {
			t.Errorf("%s moved by %v over the refine round, response reported %d", series, got, want)
		}
	}
}

// TestMetricsTenantCardinalityCap pins the bound on per-tenant series:
// the tenant label is client-supplied, so a client minting unique
// header values must not grow the registry (and the scrape output)
// without bound — tenants beyond the cap fold into the "other" label,
// while tenants seen before the cap keep their own series.
func TestMetricsTenantCardinalityCap(t *testing.T) {
	s := testServer(t)
	s.Handler() // force init
	report := &prism.Report{Validations: 1}
	ctxFor := func(tenant string) context.Context {
		return context.WithValue(context.Background(), tenantKey{}, tenant)
	}
	for i := 0; i < maxTenantSeries+25; i++ {
		s.recordRoundMetrics(ctxFor(fmt.Sprintf("tenant-%03d", i)), report)
	}
	// A pre-cap tenant keeps its own series even after the cap is hit.
	s.recordRoundMetrics(ctxFor("tenant-000"), report)

	metrics, _ := scrapeMetrics(t, s.Handler(), "/api/v1/metrics")
	var tenants int
	for series := range metrics {
		if strings.HasPrefix(series, "prism_tenant_rounds_total{") {
			tenants++
		}
	}
	if tenants != maxTenantSeries+1 { // capped tenants + the "other" fold
		t.Errorf("distinct prism_tenant_rounds_total series = %d, want %d", tenants, maxTenantSeries+1)
	}
	if got := metrics[`prism_tenant_rounds_total{tenant="other"}`]; got != 25 {
		t.Errorf(`prism_tenant_rounds_total{tenant="other"} = %v, want 25`, got)
	}
	if got := metrics[`prism_tenant_rounds_total{tenant="tenant-000"}`]; got != 2 {
		t.Errorf(`prism_tenant_rounds_total{tenant="tenant-000"} = %v, want 2`, got)
	}
	if _, ok := metrics[fmt.Sprintf(`prism_tenant_rounds_total{tenant="tenant-%03d"}`, maxTenantSeries+5)]; ok {
		t.Error("post-cap tenant minted its own series")
	}
}

// TestMetricsLegacyAlias pins that /api/metrics is the same handler as
// /api/v1/metrics behind the standard deprecation headers.
func TestMetricsLegacyAlias(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	_, rec := scrapeMetrics(t, h, "/api/metrics")
	if rec.Header().Get("Deprecation") != "true" {
		t.Errorf("Deprecation header = %q, want \"true\"", rec.Header().Get("Deprecation"))
	}
	if link := rec.Header().Get("Link"); !strings.Contains(link, api.PathPrefix) {
		t.Errorf("Link header = %q, want a pointer at %s", link, api.PathPrefix)
	}
	if got := rec.Header().Get("Content-Type"); got != obs.ContentType {
		t.Errorf("Content-Type = %q, want %q", got, obs.ContentType)
	}
}

// TestMetricsMethodNotAllowed pins the structured 405 of the endpoint.
func TestMetricsMethodNotAllowed(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/v1/metrics", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /api/v1/metrics: status=%d, want 405", rec.Code)
	}
	var apiErr api.Error
	if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Code != api.CodeMethodNotAllowed {
		t.Errorf("code = %q, want %q", apiErr.Code, api.CodeMethodNotAllowed)
	}
}
