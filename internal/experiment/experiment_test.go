package experiment

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"prism/internal/dataset"
	"prism/internal/workload"
)

// fastConfig keeps the experiment suite quick enough for unit tests.
func fastConfig() Config {
	return Config{
		Seed: 3,
		Mondial: dataset.MondialConfig{
			Seed: 3, Countries: 3, ProvincesPerCountry: 2, CitiesPerProvince: 2,
			Lakes: 20, Rivers: 12, Mountains: 8,
		},
		CasesPerLevel:   2,
		SchedulingCases: 2,
		MaxTables:       3,
	}
}

func newRunner(t testing.TB) *Runner {
	t.Helper()
	r, err := NewRunner(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRunnerDefaults(t *testing.T) {
	r, err := NewRunner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Config.CasesPerLevel != 6 || r.Config.SchedulingCases != 8 || r.Config.MaxTables != 3 {
		t.Errorf("defaults = %+v", r.Config)
	}
	if r.DB == nil || r.Engine == nil || r.Gen == nil {
		t.Error("runner not fully initialised")
	}
}

func TestRunTable1(t *testing.T) {
	r := newRunner(t)
	table, err := r.RunTable1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if table.ID != "T1" || len(table.Columns) != 3 {
		t.Fatalf("table = %+v", table)
	}
	// Table 1's California / Lake Tahoe / 497 row must be present.
	found := false
	for _, row := range table.Rows {
		if (row[0] == "California" || row[0] == "Nevada") && row[1] == "Lake Tahoe" && row[2] == "497" {
			found = true
		}
	}
	if !found {
		t.Errorf("Table 1 row missing; rows = %v", table.Rows)
	}
	joined := strings.Join(table.Notes, "\n")
	if !strings.Contains(joined, "SELECT") || !strings.Contains(joined, "geo_lake") {
		t.Errorf("notes should include the discovered SQL: %v", table.Notes)
	}
	// Rendering helpers.
	if !strings.Contains(table.String(), "Lake Tahoe") {
		t.Error("String rendering missing data")
	}
	md := table.Markdown()
	if !strings.HasPrefix(md, "### T1") || !strings.Contains(md, "| State |") {
		t.Errorf("Markdown rendering:\n%s", md)
	}
}

func TestRunE1ShapeMatchesPaper(t *testing.T) {
	r := newRunner(t)
	table, err := r.RunE1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != len(workload.Levels()) {
		t.Fatalf("one row per level expected, got %d", len(table.Rows))
	}
	times := map[string]float64{}
	for _, row := range table.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("avg time cell %q: %v", row[2], err)
		}
		times[row[0]] = v
		if fails, _ := strconv.Atoi(row[6]); fails == atoiOr(row[1], 0) {
			t.Errorf("level %s: every case failed", row[0])
		}
	}
	// The paper's claim: execution time does not grow significantly as
	// constraints become loose. Allow a generous factor on the tiny test
	// instance (timings are noisy), but loose levels must stay within an
	// order of magnitude of exact.
	exact := times[string(workload.LevelExact)]
	if exact <= 0 {
		exact = 1
	}
	for level, v := range times {
		if v > exact*25+50 {
			t.Errorf("level %s time %.1fms is disproportionate to exact %.1fms", level, v, exact)
		}
	}
}

func TestRunE2ShapeMatchesPaper(t *testing.T) {
	r := newRunner(t)
	table, err := r.RunE2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != len(workload.Levels()) {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	counts := map[string]float64{}
	for _, row := range table.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("avg mappings cell %q: %v", row[2], err)
		}
		if v <= 0 {
			t.Errorf("level %s discovered no mappings on average", row[0])
		}
		counts[row[0]] = v
	}
	// Looser constraints may admit more mappings but should stay in the
	// same ballpark for non-missing levels (paper: "did not increase much").
	exact := counts[string(workload.LevelExact)]
	for _, level := range []workload.Level{workload.LevelDisjunction, workload.LevelRange} {
		if counts[string(level)] > exact*20 {
			t.Errorf("level %s mapping count %.1f explodes relative to exact %.1f", level, counts[string(level)], exact)
		}
	}
}

func TestRunE3ShapeMatchesPaper(t *testing.T) {
	r := newRunner(t)
	table, err := r.RunE3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) < 3 { // at least one case + AVERAGE + MAX
		t.Fatalf("rows = %d", len(table.Rows))
	}
	var caseRows [][]string
	for _, row := range table.Rows {
		if row[0] == "AVERAGE" || row[0] == "MAX" {
			continue
		}
		caseRows = append(caseRows, row)
	}
	for _, row := range caseRows {
		optimum := atoiOr(row[2], -1)
		path := atoiOr(row[3], -1)
		bayes := atoiOr(row[4], -1)
		if optimum < 0 || path < 0 || bayes < 0 {
			t.Fatalf("unparseable row %v", row)
		}
		// The optimum is a lower bound for every policy; Prism should not
		// be worse than the baseline (who wins, per the paper).
		if path < optimum || bayes < optimum {
			t.Errorf("policy beat the optimum in row %v", row)
		}
		if bayes > path {
			t.Errorf("bayes scheduling should not need more validations than the baseline: %v", row)
		}
	}
	// Summary rows exist and carry a percentage.
	last := table.Rows[len(table.Rows)-1]
	if last[0] != "MAX" || !strings.HasSuffix(last[len(last)-1], "%") {
		t.Errorf("MAX summary row malformed: %v", last)
	}
}

func TestRunAll(t *testing.T) {
	r := newRunner(t)
	tables, err := r.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("expected 4 artefacts, got %d", len(tables))
	}
	ids := []string{"T1", "E1", "E2", "E3"}
	for i, tab := range tables {
		if tab.ID != ids[i] {
			t.Errorf("artefact %d = %s, want %s", i, tab.ID, ids[i])
		}
		if len(tab.Rows) == 0 {
			t.Errorf("artefact %s has no rows", tab.ID)
		}
	}
}

func atoiOr(s string, def int) int {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return def
	}
	return v
}

func BenchmarkRunTable1(b *testing.B) {
	r, err := NewRunner(fastConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunTable1(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunE3(b *testing.B) {
	r, err := NewRunner(fastConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunE3(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
