// Package experiment regenerates the paper's evaluation (§2.4) and the
// Table 1 walkthrough on the synthetic data sets: the resolution sweeps
// (execution time and result-set size as constraints become looser) and the
// filter-scheduling comparison between the Filter baseline, Prism's
// Bayesian scheduling, and the optimum.
package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"prism/internal/constraint"
	"prism/internal/dataset"
	"prism/internal/discovery"
	"prism/internal/exec"
	"prism/internal/filter"
	"prism/internal/graphx"
	"prism/internal/mem"
	"prism/internal/obs"
	"prism/internal/sched"
	"prism/internal/workload"
)

// Table is one regenerated evaluation artefact (a table or figure series).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		b.WriteString("\n*" + n + "*\n")
	}
	return b.String()
}

// Config tunes the experiment suite.
type Config struct {
	// Seed drives dataset and workload generation.
	Seed int64
	// Mondial sizes the synthetic source database (zero value = a reduced
	// instance that keeps the suite interactive).
	Mondial dataset.MondialConfig
	// CasesPerLevel is the number of test cases per resolution level for
	// the E1/E2 sweeps (default 6).
	CasesPerLevel int
	// SchedulingCases is the number of test cases for the E3 scheduling
	// comparison (default 8).
	SchedulingCases int
	// SamplesPerCase is the number of sample rows per generated case.
	SamplesPerCase int
	// TimeLimit is the per-round discovery budget (default 60s, as in the
	// demo).
	TimeLimit time.Duration
	// MaxTables bounds candidate join trees (default 3 to keep the
	// experiment suite fast; the library default is 4).
	MaxTables int
	// Parallelism bounds concurrent filter validations per round (default
	// 1, the sequential loop, so validation counts stay exactly
	// reproducible across machines).
	Parallelism int
	// Executor selects the execution backend for every round and ground
	// truth computation ("" = the engine default, columnar). Validation
	// counts are identical across backends; wall-clock times are not.
	Executor string
	// Trace enables round tracing (discovery.Options.Trace) for every
	// discovery round of the suite; the Runner keeps the last round's span
	// tree in LastTrace for the caller to dump.
	Trace bool
	// Database, when non-nil, is used as the source database directly —
	// typically one restored from an engine snapshot — instead of
	// generating Mondial from Config.Mondial. It must be a Mondial-shaped
	// database: the workload generator's ground truths assume that
	// schema.
	Database *mem.Database
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Mondial.Countries == 0 && c.Mondial.Lakes == 0 {
		c.Mondial = dataset.MondialConfig{
			Seed: c.Seed, Countries: 5, ProvincesPerCountry: 3, CitiesPerProvince: 2,
			Lakes: 40, Rivers: 25, Mountains: 15,
		}
	}
	if c.CasesPerLevel <= 0 {
		c.CasesPerLevel = 6
	}
	if c.SchedulingCases <= 0 {
		c.SchedulingCases = 8
	}
	if c.SamplesPerCase <= 0 {
		c.SamplesPerCase = 1
	}
	if c.TimeLimit == 0 {
		c.TimeLimit = 60 * time.Second
	}
	if c.MaxTables <= 0 {
		c.MaxTables = 3
	}
	if c.Parallelism <= 0 {
		// Sequential by default so validation counts stay exactly
		// reproducible across machines.
		c.Parallelism = 1
	}
	return c
}

// Runner holds the prepared database, engine and workload generator.
type Runner struct {
	Config Config
	DB     *mem.Database
	// Exec is the execution backend named by Config.Executor, shared by the
	// scheduling comparison and the discovery rounds.
	Exec   exec.Executor
	Engine *discovery.Engine
	Gen    *workload.Generator
	// LastTrace is the span tree of the most recent traced round (nil
	// until a round runs with Config.Trace set).
	LastTrace *obs.Span
}

// NewRunner prepares the experiment environment.
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	db := cfg.Database
	if db == nil {
		var err error
		db, err = dataset.Mondial(cfg.Mondial)
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
	}
	gen, err := workload.NewGenerator(db, cfg.Seed, workload.MondialGroundTruths())
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	r := &Runner{
		Config: cfg,
		DB:     db,
		Engine: discovery.NewEngineWithExecutor(db, cfg.Executor),
		Gen:    gen,
	}
	// Resolve the backend once so a bad name fails at construction, and so
	// the scheduling comparison probes the same executor instance the
	// discovery rounds use.
	ex, err := r.Engine.Executor(cfg.Executor)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	r.Exec = ex
	return r, nil
}

// levelMetrics aggregates per-level measurements for E1/E2.
type levelMetrics struct {
	cases       int
	failures    int
	timeouts    int
	totalTime   time.Duration
	validations int
	candidates  int
	mappings    int
}

func (r *Runner) sweepLevel(ctx context.Context, level workload.Level) (levelMetrics, error) {
	var m levelMetrics
	cases, err := r.Gen.Generate(level, r.Config.CasesPerLevel, workload.Config{SamplesPerCase: r.Config.SamplesPerCase})
	if err != nil {
		return m, err
	}
	for _, tc := range cases {
		if err := ctx.Err(); err != nil {
			return m, err
		}
		m.cases++
		report, err := r.Engine.Discover(ctx, tc.Spec, discovery.Options{
			TimeLimit:   r.Config.TimeLimit,
			MaxTables:   r.Config.MaxTables,
			Parallelism: r.Config.Parallelism,
			Executor:    r.Config.Executor,
			Trace:       r.Config.Trace,
		})
		if report != nil && report.Trace != nil {
			r.LastTrace = report.Trace
		}
		if err != nil {
			m.failures++
			continue
		}
		if report.TimedOut {
			m.timeouts++
		}
		m.totalTime += report.Elapsed
		m.validations += report.Validations
		m.candidates += report.CandidatesEnumerated
		m.mappings += len(report.Mappings)
	}
	return m, nil
}

// RunE1 regenerates the execution-time-vs-resolution series: the paper's
// claim that overall execution time does not grow significantly as user
// constraints become loose.
func (r *Runner) RunE1(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Discovery effort as constraints become looser (synthetic Mondial)",
		Columns: []string{"resolution level", "cases", "avg time (ms)", "avg validations", "avg candidates", "timeouts", "failures"},
		Notes: []string{
			"Expected shape (paper §2.4): execution time stays roughly flat from exact to loose constraints.",
		},
	}
	for _, level := range workload.Levels() {
		m, err := r.sweepLevel(ctx, level)
		if err != nil {
			return nil, err
		}
		ok := m.cases - m.failures
		if ok == 0 {
			ok = 1
		}
		t.Rows = append(t.Rows, []string{
			string(level),
			fmt.Sprintf("%d", m.cases),
			fmt.Sprintf("%.1f", float64(m.totalTime.Milliseconds())/float64(ok)),
			fmt.Sprintf("%.1f", float64(m.validations)/float64(ok)),
			fmt.Sprintf("%.1f", float64(m.candidates)/float64(ok)),
			fmt.Sprintf("%d", m.timeouts),
			fmt.Sprintf("%d", m.failures),
		})
	}
	return t, nil
}

// RunE2 regenerates the result-set-size-vs-resolution series: the paper's
// claim that the number of satisfying schema mapping queries does not
// increase much, except when many cells are missing.
func (r *Runner) RunE2(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Number of satisfying schema mapping queries as constraints become looser",
		Columns: []string{"resolution level", "cases", "avg mappings", "avg candidates", "failures"},
		Notes: []string{
			"Expected shape (paper §2.4): mapping count stays low across levels and grows mainly at the missing-values level.",
		},
	}
	for _, level := range workload.Levels() {
		m, err := r.sweepLevel(ctx, level)
		if err != nil {
			return nil, err
		}
		ok := m.cases - m.failures
		if ok == 0 {
			ok = 1
		}
		t.Rows = append(t.Rows, []string{
			string(level),
			fmt.Sprintf("%d", m.cases),
			fmt.Sprintf("%.2f", float64(m.mappings)/float64(ok)),
			fmt.Sprintf("%.1f", float64(m.candidates)/float64(ok)),
			fmt.Sprintf("%d", m.failures),
		})
	}
	return t, nil
}

// RunE3 regenerates the filter-scheduling comparison: validations needed by
// the Filter baseline, by Prism's Bayesian scheduling, by a random order,
// and by the (greedy) optimum, plus the gap reduction the paper reports
// (up to ~70%, ~30% on average).
func (r *Runner) RunE3(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Filter validations per scheduling policy (gap to optimum)",
		Columns: []string{
			"test case", "filters", "optimum", "filter(pathlen)", "prism(bayes)", "random", "gap reduction",
		},
		Notes: []string{
			"gap reduction = (gap(pathlength) - gap(bayes)) / gap(pathlength); the paper reports up to ~70%, ~30% on average.",
		},
	}
	// Use the paper-style mixed-resolution cases (disjunctions on text
	// columns, metadata-only numeric columns) — the regime §2.4 targets,
	// where the candidate space is wide and scheduling matters — plus a few
	// plain disjunction cases for contrast.
	var cases []workload.TestCase
	half := r.Config.SchedulingCases / 2
	if half == 0 {
		half = 1
	}
	paper, err := r.Gen.Generate(workload.LevelPaper, r.Config.SchedulingCases-half, workload.Config{SamplesPerCase: r.Config.SamplesPerCase})
	if err != nil {
		return nil, err
	}
	dis, err := r.Gen.Generate(workload.LevelDisjunction, half, workload.Config{SamplesPerCase: r.Config.SamplesPerCase, LoosenFraction: 1})
	if err != nil {
		return nil, err
	}
	cases = append(cases, paper...)
	cases = append(cases, dis...)

	var sumReduction, maxReduction float64
	counted := 0
	for _, tc := range cases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row, reduction, err := r.scheduleCase(ctx, tc)
		if err != nil {
			// Cases whose constraints cannot be matched (rare) are skipped.
			continue
		}
		t.Rows = append(t.Rows, row)
		sumReduction += reduction
		if reduction > maxReduction {
			maxReduction = reduction
		}
		counted++
	}
	if counted > 0 {
		t.Rows = append(t.Rows, []string{
			"AVERAGE", "", "", "", "", "",
			fmt.Sprintf("%.0f%%", 100*sumReduction/float64(counted)),
		})
		t.Rows = append(t.Rows, []string{
			"MAX", "", "", "", "", "",
			fmt.Sprintf("%.0f%%", 100*maxReduction),
		})
	}
	return t, nil
}

// scheduleCase runs the three policies on one test case and returns the
// table row plus the bayes-vs-pathlength gap reduction.
func (r *Runner) scheduleCase(ctx context.Context, tc workload.TestCase) ([]string, float64, error) {
	related, err := r.Engine.RelatedColumns(tc.Spec)
	if err != nil {
		return nil, 0, err
	}
	// Scheduling is evaluated on a slightly deeper search space than the
	// E1/E2 sweeps (one more join hop) so that candidate queries share
	// non-trivial filters and validation order matters.
	cands, err := graphx.Enumerate(graphx.New(r.DB.Schema()), related, graphx.EnumerateOptions{
		MaxTables:           r.Config.MaxTables + 1,
		RequireUsefulLeaves: true,
	})
	if err != nil {
		return nil, 0, err
	}
	set := filter.Decompose(cands)
	truth, err := sched.GroundTruthContext(ctx, r.Exec, tc.Spec, set)
	if err != nil {
		return nil, 0, err
	}
	optimum := sched.OptimalValidationCount(set, truth)

	run := func(est sched.Estimator) (int, error) {
		runner := &sched.Runner{DB: r.Exec, Spec: tc.Spec, Set: set, Estimator: est,
			Options: sched.Options{
				TimeLimit:   r.Config.TimeLimit,
				Parallelism: r.Config.Parallelism,
			}}
		res, err := runner.RunContext(ctx)
		if err != nil {
			return 0, err
		}
		return res.Validations, nil
	}
	path, err := run(&sched.PathLengthEstimator{})
	if err != nil {
		return nil, 0, err
	}
	bayesCount, err := run(&sched.BayesEstimator{Model: r.Engine.Model(), Spec: tc.Spec})
	if err != nil {
		return nil, 0, err
	}
	random, err := run(&sched.RandomEstimator{Seed: r.Config.Seed})
	if err != nil {
		return nil, 0, err
	}
	reduction := sched.GapReduction(path, bayesCount, optimum)
	row := []string{
		tc.Name,
		fmt.Sprintf("%d", set.NumFilters()),
		fmt.Sprintf("%d", optimum),
		fmt.Sprintf("%d", path),
		fmt.Sprintf("%d", bayesCount),
		fmt.Sprintf("%d", random),
		fmt.Sprintf("%.0f%%", 100*reduction),
	}
	return row, reduction, nil
}

// RunTable1 reproduces the paper's running example: the §3 constraints over
// Mondial, the discovered SQL (the paper's §1 query), and the Table 1 rows.
func (r *Runner) RunTable1(ctx context.Context) (*Table, error) {
	spec, err := constraint.ParseGrid(3,
		[][]string{{"California || Nevada", "Lake Tahoe", ""}},
		[]string{"", "", "DataType=='decimal' AND MinValue>='0'"},
	)
	if err != nil {
		return nil, err
	}
	report, err := r.Engine.Discover(ctx, spec, discovery.Options{
		TimeLimit:      r.Config.TimeLimit,
		MaxTables:      r.Config.MaxTables,
		Parallelism:    r.Config.Parallelism,
		Executor:       r.Config.Executor,
		IncludeResults: true,
		ResultLimit:    5,
		Trace:          r.Config.Trace,
	})
	if report != nil && report.Trace != nil {
		r.LastTrace = report.Trace
	}
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "T1",
		Title:   "Table 1 / §3 walkthrough: lakes, their states and areas from Mondial",
		Columns: []string{"State", "Lake Name", "Area (km2)"},
	}
	var desired *discovery.Mapping
	for i := range report.Mappings {
		m := &report.Mappings[i]
		if m.Candidate.Tree.Size() == 2 && strings.Contains(m.SQL, "geo_lake.Province, Lake.Name, Lake.Area") {
			desired = m
			break
		}
	}
	if desired == nil && len(report.Mappings) > 0 {
		desired = &report.Mappings[0]
	}
	if desired == nil {
		return nil, fmt.Errorf("experiment: the Table 1 mapping was not discovered")
	}
	for _, row := range desired.Result.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		t.Rows = append(t.Rows, cells)
	}
	t.Notes = append(t.Notes,
		"discovered SQL: "+desired.SQL,
		fmt.Sprintf("discovered %d satisfying schema mapping queries in total (%s)", len(report.Mappings), report.Summary()),
	)
	return t, nil
}

// RunAll regenerates every evaluation artefact.
func (r *Runner) RunAll(ctx context.Context) ([]*Table, error) {
	var out []*Table
	for _, f := range []func(context.Context) (*Table, error){r.RunTable1, r.RunE1, r.RunE2, r.RunE3} {
		t, err := f(ctx)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
