package lang

import (
	"math/rand"
	"testing"

	"prism/internal/value"
)

// TestNumericBounds checks interval extraction per constraint shape.
func TestNumericBounds(t *testing.T) {
	parse := func(cell string) ValueExpr {
		e, err := ParseValueConstraint(cell)
		if err != nil {
			t.Fatalf("parse %q: %v", cell, err)
		}
		return e
	}
	cases := []struct {
		cell string
		ok   bool
		want BoundsCover
	}{
		{">= 100", true, BoundsCover{Lo: 100, HasLo: true}},
		{"> 100", true, BoundsCover{Lo: 100, HasLo: true}},
		{"<= 600", true, BoundsCover{Hi: 600, HasHi: true}},
		{"< 600", true, BoundsCover{Hi: 600, HasHi: true}},
		// "== 497" parses to a Keyword, which the keyword index serves; a
		// structural equality Compare still yields a point interval (below).
		{"== 497", false, BoundsCover{}},
		{"[100, 600]", true, BoundsCover{Lo: 100, Hi: 600, HasLo: true, HasHi: true}},
		{">= 100 && <= 600", true, BoundsCover{Lo: 100, Hi: 600, HasLo: true, HasHi: true}},
		{">= 100 && >= 200", true, BoundsCover{Lo: 200, HasLo: true}},
		{"[0, 10] || [20, 30]", true, BoundsCover{Lo: 0, Hi: 30, HasLo: true, HasHi: true}},
		{"[0, 10] || >= 20", true, BoundsCover{Lo: 0, HasLo: true}},
		{"!= 5", false, BoundsCover{}},
		{"Lake Tahoe", false, BoundsCover{}},
		{"NOT ([100, 600])", false, BoundsCover{}},
		{"[0, 10] || Nevada", false, BoundsCover{}},
	}
	for _, tc := range cases {
		got, ok := NumericBounds(parse(tc.cell))
		if ok != tc.ok {
			t.Errorf("NumericBounds(%q) ok = %v, want %v", tc.cell, ok, tc.ok)
			continue
		}
		if ok && got != tc.want {
			t.Errorf("NumericBounds(%q) = %+v, want %+v", tc.cell, got, tc.want)
		}
	}
	// Temporal constants must refuse a numeric cover: Compare orders
	// non-numeric text against them by kind, not magnitude.
	if _, ok := NumericBounds(Compare{Op: OpGe, Const: value.Parse("2020-01-31")}); ok {
		t.Error("a Date ordering constant must not claim a numeric cover")
	}
	// A structural equality Compare (built programmatically) is a point
	// interval.
	got, ok := NumericBounds(Compare{Op: OpEq, Const: value.NewInt(497)})
	if !ok || got != (BoundsCover{Lo: 497, Hi: 497, HasLo: true, HasHi: true}) {
		t.Errorf("Compare OpEq 497 = %+v ok=%v", got, ok)
	}
}

// TestNumericBoundsIsACover is the property pruning relies on: for random
// expressions and random float-viewable values, Eval(v) implies v's float
// lies inside the claimed interval, and Eval(NULL) is false whenever a
// cover is claimed.
func TestNumericBoundsIsACover(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	randLeaf := func() ValueExpr {
		c := value.NewInt(int64(rng.Intn(200) - 100))
		switch rng.Intn(4) {
		case 0:
			return Compare{Op: BinOp(rng.Intn(6)), Const: c}
		case 1:
			lo := int64(rng.Intn(200) - 100)
			return Range{Lo: value.NewInt(lo), Hi: value.NewInt(lo + int64(rng.Intn(50)))}
		case 2:
			return Keyword{Word: "x"}
		default:
			return Not{Term: Compare{Op: OpEq, Const: c}}
		}
	}
	var randExpr func(depth int) ValueExpr
	randExpr = func(depth int) ValueExpr {
		if depth == 0 || rng.Intn(2) == 0 {
			return randLeaf()
		}
		n := 2 + rng.Intn(2)
		terms := make([]ValueExpr, n)
		for i := range terms {
			terms[i] = randExpr(depth - 1)
		}
		if rng.Intn(2) == 0 {
			return And{Terms: terms}
		}
		return Or{Terms: terms}
	}
	probes := []value.Value{value.NullValue}
	for i := -110; i <= 110; i += 3 {
		probes = append(probes, value.NewInt(int64(i)), value.NewDecimal(float64(i)+0.5))
	}
	for round := 0; round < 500; round++ {
		e := randExpr(3)
		b, ok := NumericBounds(e)
		if !ok {
			continue
		}
		if e.Eval(value.NullValue) {
			t.Fatalf("round %d: %s claims a cover but accepts NULL", round, e)
		}
		for _, v := range probes {
			f, fok := v.Float()
			if !fok || !e.Eval(v) {
				continue
			}
			if b.HasLo && f < b.Lo || b.HasHi && f > b.Hi {
				t.Fatalf("round %d: %s accepts %v outside claimed cover %+v", round, e, v, b)
			}
		}
	}
}

// TestExactRangeBoundsCharacterises is the property the executors' float
// fast path relies on: for a pure numeric range, Eval(v) holds iff v's
// numeric view lies inside the interval — for EVERY value kind, including
// non-numeric text (which sorts above the numeric kinds), NULL, temporal
// values, and numeric-looking text.
func TestExactRangeBoundsCharacterises(t *testing.T) {
	probes := []value.Value{
		value.NullValue,
		value.NewInt(-7), value.NewInt(100), value.NewInt(350), value.NewInt(600), value.NewInt(601),
		value.NewDecimal(99.999), value.NewDecimal(100.0), value.NewDecimal(600.0001),
		value.Parse("250"), value.Parse("250.5"), // numeric-looking text
		value.Parse("Lake Tahoe"), value.Parse(""), value.Parse("nan"),
		value.Parse("2020-01-31"), value.Parse("12:30:00"),
	}
	exprs := []ValueExpr{
		Range{Lo: value.NewInt(100), Hi: value.NewInt(600)},
		Range{Lo: value.NewDecimal(-50.5), Hi: value.NewInt(120)},
		Range{Lo: value.NewInt(0), Hi: value.NewInt(0)},
	}
	for _, e := range exprs {
		b, ok := ExactRangeBounds(e)
		if !ok {
			t.Fatalf("ExactRangeBounds(%s) refused a pure numeric range", e)
		}
		for _, v := range probes {
			f, fok := v.Float()
			fast := fok && f >= b.Lo && f <= b.Hi
			if got := e.Eval(v); got != fast {
				t.Errorf("%s on %v: Eval=%v, float fast path=%v", e, v, got, fast)
			}
		}
	}
	// Shapes the fast path must refuse: orderings (non-numeric text sorts
	// above the constant and passes them with no numeric view), text
	// endpoints, and compound expressions.
	refused := []ValueExpr{
		Compare{Op: OpGe, Const: value.NewInt(5)},
		Range{Lo: value.Parse("a"), Hi: value.NewInt(10)},
		And{Terms: []ValueExpr{Range{Lo: value.NewInt(0), Hi: value.NewInt(9)}}},
	}
	for _, e := range refused {
		if _, ok := ExactRangeBounds(e); ok {
			t.Errorf("ExactRangeBounds(%s) claimed exactness", e)
		}
	}
}
