package lang

import (
	"strings"
	"testing"
	"testing/quick"

	"prism/internal/schema"
	"prism/internal/value"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("California || Nevada")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokenWord, TokenOr, TokenWord, TokenEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexOperatorsAndLiterals(t *testing.T) {
	toks, err := Lex(">= 100 && <= 600.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokenOp, ">="}, {TokenNumber, "100"}, {TokenAnd, "&&"}, {TokenOp, "<="}, {TokenNumber, "600.5"}, {TokenEOF, ""},
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || (w.text != "" && toks[i].Text != w.text) {
			t.Errorf("token %d = %v, want %v %q", i, toks[i], w.kind, w.text)
		}
	}
	toks, err = Lex("DataType=='decimal' AND MinValue>=‘0’")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	wantKinds := []TokenKind{TokenWord, TokenOp, TokenString, TokenAnd, TokenWord, TokenOp, TokenString, TokenEOF}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range wantKinds {
		if kinds[i] != wantKinds[i] {
			t.Errorf("kind %d = %v want %v", i, kinds[i], wantKinds[i])
		}
	}
}

func TestLexNegativeNumbersAndWords(t *testing.T) {
	toks, err := Lex(">= -5")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokenNumber || toks[1].Text != "-5" {
		t.Errorf("negative number token = %v", toks[1])
	}
	// A hyphen inside a word stays a word.
	toks, err = Lex("north-dakota")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokenWord || toks[0].Text != "north-dakota" {
		t.Errorf("hyphenated word = %v", toks[0])
	}
	// NOT / != / <>
	toks, err = Lex("NOT x != y <> z")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokenNot || toks[2].Kind != TokenOp || toks[2].Text != "!=" || toks[4].Text != "!=" {
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, in := range []string{"a & b", "a | b", "'unterminated", "‘unterminated", "\x7f{"} {
		if _, err := Lex(in); err == nil {
			t.Errorf("Lex(%q) expected error", in)
		} else if !strings.Contains(err.Error(), "lang:") {
			t.Errorf("error should be a SyntaxError: %v", err)
		}
	}
}

func TestTokenStrings(t *testing.T) {
	if (Token{Kind: TokenEOF}).String() != "end of input" {
		t.Error("EOF token string")
	}
	if !strings.Contains((Token{Kind: TokenWord, Text: "x"}).String(), "word") {
		t.Error("word token string")
	}
	for k := TokenEOF; k <= TokenComma; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if TokenKind(200).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestParseBareKeyword(t *testing.T) {
	e, err := ParseValueConstraint("Lake Tahoe")
	if err != nil {
		t.Fatal(err)
	}
	kw, ok := e.(Keyword)
	if !ok || kw.Word != "Lake Tahoe" {
		t.Fatalf("parsed %#v", e)
	}
	if !e.Eval(value.NewText("lake tahoe")) {
		t.Error("keyword should match case-insensitively")
	}
	if e.Eval(value.NewText("Lake")) {
		t.Error("keyword requires full match")
	}
	if e.Resolution() != ResolutionHigh {
		t.Error("exact keyword should be high resolution")
	}
}

func TestParseDisjunction(t *testing.T) {
	e, err := ParseValueConstraint("California || Nevada")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := e.(Or)
	if !ok || len(or.Terms) != 2 {
		t.Fatalf("parsed %#v", e)
	}
	if !e.Eval(value.NewText("Nevada")) || !e.Eval(value.NewText("california")) {
		t.Error("disjunction should match either keyword")
	}
	if e.Eval(value.NewText("Oregon")) {
		t.Error("Oregon should not match")
	}
	if e.Resolution() != ResolutionMedium {
		t.Error("disjunction is medium resolution")
	}
	if got := e.String(); got != "California || Nevada" {
		t.Errorf("String = %q", got)
	}
}

func TestParseComparisonsAndRanges(t *testing.T) {
	e := MustParseValueConstraint(">= 100 && <= 600")
	if !e.Eval(value.NewDecimal(497)) || e.Eval(value.NewDecimal(50)) || e.Eval(value.NewDecimal(700)) {
		t.Error("conjunction of comparisons misbehaves")
	}
	if e.Resolution() != ResolutionMedium {
		t.Error("comparisons are medium resolution")
	}
	r := MustParseValueConstraint("[100, 600]")
	if !r.Eval(value.NewDecimal(100)) || !r.Eval(value.NewDecimal(600)) || r.Eval(value.NewDecimal(99.9)) {
		t.Error("range bounds should be inclusive")
	}
	if r.String() != "[100, 600]" {
		t.Errorf("range String = %q", r.String())
	}
	ne := MustParseValueConstraint("!= 0")
	if ne.Eval(value.NewInt(0)) || !ne.Eval(value.NewInt(5)) {
		t.Error("!= misbehaves")
	}
	eq := MustParseValueConstraint("= 'Lake Tahoe'")
	if kw, ok := eq.(Keyword); !ok || kw.Word != "Lake Tahoe" {
		t.Errorf("explicit equality should become a Keyword, got %#v", eq)
	}
	lt := MustParseValueConstraint("< -2.5")
	if !lt.Eval(value.NewDecimal(-3)) || lt.Eval(value.NewDecimal(0)) {
		t.Error("< negative misbehaves")
	}
	gt := MustParseValueConstraint("> 10")
	if gt.Eval(value.NullValue) {
		t.Error("NULL should never satisfy a comparison")
	}
}

func TestParseNotAndParens(t *testing.T) {
	e := MustParseValueConstraint("NOT (California || Nevada)")
	if e.Eval(value.NewText("California")) || !e.Eval(value.NewText("Oregon")) {
		t.Error("NOT misbehaves")
	}
	if !strings.HasPrefix(e.String(), "NOT (") {
		t.Errorf("String = %q", e.String())
	}
	e = MustParseValueConstraint("(>= 10 && <= 20) || (>= 100 && <= 200)")
	if !e.Eval(value.NewInt(15)) || !e.Eval(value.NewInt(150)) || e.Eval(value.NewInt(50)) {
		t.Error("nested parens misbehave")
	}
	e = MustParseValueConstraint("! = 3") // '!' as NOT then '=' 3
	if e.Eval(value.NewInt(3)) || !e.Eval(value.NewInt(4)) {
		t.Error("bang-not misbehaves")
	}
}

func TestParseEmptyCell(t *testing.T) {
	e, err := ParseValueConstraint("   ")
	if err != nil || e != nil {
		t.Errorf("empty cell should parse to nil, got %v %v", e, err)
	}
	m, err := ParseMetadataConstraint("")
	if err != nil || m != nil {
		t.Errorf("empty metadata cell should parse to nil, got %v %v", m, err)
	}
}

func TestParseValueErrors(t *testing.T) {
	bad := []string{
		">=",            // missing constant
		"[1, ]",         // missing hi
		"[5, 2]",        // empty range
		"[1 2]",         // missing comma
		"[1, 2",         // missing bracket
		"(California",   // missing paren
		"California )",  // trailing token
		">= 1 &&",       // dangling AND
		"|| California", // leading OR
		"= ",            // equality without operand
		"&& 5",          // leading AND
		"NOT",           // dangling NOT
		"'unclosed",     // lexer error
	}
	for _, in := range bad {
		if _, err := ParseValueConstraint(in); err == nil {
			t.Errorf("ParseValueConstraint(%q) expected error", in)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseValueConstraint should panic on bad input")
		}
	}()
	MustParseValueConstraint(">=")
}

func TestParseSampleRow(t *testing.T) {
	row, err := ParseSampleRow([]string{"California || Nevada", "Lake Tahoe", ""})
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 3 || row[0] == nil || row[1] == nil || row[2] != nil {
		t.Fatalf("row = %#v", row)
	}
	if _, err := ParseSampleRow([]string{">="}); err == nil {
		t.Error("bad cell should propagate error")
	}
}

func TestParseMetadataRow(t *testing.T) {
	row, err := ParseMetadataRow([]string{"", "DataType = 'text'", "DataType=='decimal' AND MinValue>='0'"})
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != nil || row[1] == nil || row[2] == nil {
		t.Fatalf("row = %#v", row)
	}
	if _, err := ParseMetadataRow([]string{"DataType =="}); err == nil {
		t.Error("bad metadata cell should propagate error")
	}
}

func statsFor(t *testing.T, typ value.Kind, vals ...value.Value) schema.Stats {
	t.Helper()
	c := schema.NewStatsCollector(schema.ColumnRef{Table: "Lake", Column: "Area"}, typ)
	for _, v := range vals {
		c.Add(v)
	}
	return c.Stats()
}

func TestMetadataPredicateEval(t *testing.T) {
	st := statsFor(t, value.Decimal, value.NewDecimal(53.2), value.NewDecimal(497), value.NewDecimal(981))
	cases := []struct {
		in   string
		want bool
	}{
		{"DataType == 'decimal'", true},
		{"DataType == 'text'", false},
		{"DataType != 'text'", true},
		{"MinValue >= '0'", true},
		{"MinValue >= 100", false},
		{"MaxValue <= 1000", true},
		{"MaxValue > 1000", false},
		{"MaxLength <= 4", true},
		{"MaxLength < 3", false},
		{"ColumnName == 'Area'", true},
		{"ColumnName = 'area'", true},
		{"ColumnName != 'Name'", true},
		{"ColumnName == 'Name'", false},
		{"ColumnName == 'Ar%'", true},
		{"TableName == 'Lake'", true},
		{"TableName == 'lak*'", true},
		{"TableName != 'Lake'", false},
		{"DataType == 'decimal' AND MinValue >= '0'", true},
		{"DataType == 'text' OR MinValue >= '0'", true},
		{"DataType == 'text' AND MinValue >= '0'", false},
		{"(DataType=='text' OR DataType=='decimal') AND MaxValue<=1000", true},
	}
	for _, c := range cases {
		e, err := ParseMetadataConstraint(c.in)
		if err != nil {
			t.Errorf("parse %q: %v", c.in, err)
			continue
		}
		if got := e.Eval(st); got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMetadataIntSatisfiesDecimal(t *testing.T) {
	st := statsFor(t, value.Int, value.NewInt(10), value.NewInt(20))
	e := MustParseMetadataConstraint("DataType == 'decimal'")
	if !e.Eval(st) {
		t.Error("an int column should satisfy a decimal data-type requirement")
	}
	e = MustParseMetadataConstraint("DataType != 'decimal'")
	if e.Eval(st) {
		t.Error("negated decimal requirement should fail for int column")
	}
}

func TestMetadataEmptyColumn(t *testing.T) {
	st := statsFor(t, value.Decimal) // no rows
	if MustParseMetadataConstraint("MinValue >= 0").Eval(st) {
		t.Error("empty column has no MinValue")
	}
	if MustParseMetadataConstraint("MaxValue <= 10").Eval(st) {
		t.Error("empty column has no MaxValue")
	}
}

func TestMetadataBadTypeConstant(t *testing.T) {
	st := statsFor(t, value.Decimal, value.NewDecimal(1))
	e := MetaPredicate{Field: FieldDataType, Op: OpEq, Const: "blob"}
	if e.Eval(st) {
		t.Error("unknown type constant should evaluate to false")
	}
	bad := MetaPredicate{Field: FieldMaxLength, Op: OpLe, Const: "abc"}
	if bad.Eval(st) {
		t.Error("non-numeric MaxLength constant should evaluate to false")
	}
	if (MetaPredicate{Field: MetaField(99), Op: OpEq, Const: "x"}).Eval(st) {
		t.Error("unknown field should evaluate to false")
	}
}

func TestParseMetadataErrors(t *testing.T) {
	bad := []string{
		"Bogus == 'x'",        // unknown field
		"DataType 'x'",        // missing operator
		"DataType ==",         // missing constant
		"== 'decimal'",        // missing field
		"DataType == 'x' AND", // dangling AND
		"(DataType == 'x'",    // missing paren
		"DataType == 'x') ",   // trailing paren
	}
	for _, in := range bad {
		if _, err := ParseMetadataConstraint(in); err == nil {
			t.Errorf("ParseMetadataConstraint(%q) expected error", in)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseMetadataConstraint should panic")
		}
	}()
	MustParseMetadataConstraint("Bogus == 1")
}

func TestParseMetaFieldNames(t *testing.T) {
	cases := map[string]MetaField{
		"DataType": FieldDataType, "type": FieldDataType,
		"ColumnName": FieldColumnName, "column": FieldColumnName,
		"MaxValue": FieldMaxValue, "max": FieldMaxValue,
		"MinValue": FieldMinValue, "min": FieldMinValue,
		"MaxLength": FieldMaxLength, "length": FieldMaxLength,
		"TableName": FieldTableName, "table": FieldTableName,
	}
	for in, want := range cases {
		got, err := ParseMetaField(in)
		if err != nil || got != want {
			t.Errorf("ParseMetaField(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseMetaField("nope"); err == nil {
		t.Error("unknown field should error")
	}
	for f := FieldDataType; f <= FieldTableName; f++ {
		if f.String() == "" {
			t.Errorf("field %d has empty name", f)
		}
		// Round trip.
		back, err := ParseMetaField(f.String())
		if err != nil || back != f {
			t.Errorf("round trip of %v failed: %v %v", f, back, err)
		}
	}
	if MetaField(77).String() == "" {
		t.Error("unknown field should still render")
	}
}

func TestBinOpParsingAndString(t *testing.T) {
	for _, s := range []string{"=", "==", "!=", "<>", "<", "<=", ">", ">="} {
		if _, err := ParseBinOp(s); err != nil {
			t.Errorf("ParseBinOp(%q): %v", s, err)
		}
	}
	if _, err := ParseBinOp("~"); err == nil {
		t.Error("unknown operator should error")
	}
	for op := OpEq; op <= OpGe; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty string", op)
		}
	}
	if BinOp(55).String() == "" || BinOp(55).apply(value.NewInt(1), value.NewInt(1)) {
		t.Error("unknown op should render and evaluate to false")
	}
	if BinOp(55).applyInt(1, 1) {
		t.Error("unknown op applyInt should be false")
	}
}

func TestKeywordsExtraction(t *testing.T) {
	e := MustParseValueConstraint("(California || Nevada) && != 'Utah'")
	kws := Keywords(e)
	if len(kws) != 2 || kws[0] != "California" || kws[1] != "Nevada" {
		t.Errorf("Keywords = %v", kws)
	}
	e = MustParseValueConstraint("= 497")
	if kws := Keywords(e); len(kws) != 1 || kws[0] != "497" {
		t.Errorf("Keywords(=497) = %v", kws)
	}
	e = MustParseValueConstraint("NOT Oregon")
	if kws := Keywords(e); len(kws) != 1 || kws[0] != "Oregon" {
		t.Errorf("Keywords(NOT Oregon) = %v", kws)
	}
	if kws := Keywords(nil); kws != nil {
		t.Errorf("Keywords(nil) = %v", kws)
	}
	if kws := Keywords(MustParseValueConstraint(">= 5")); len(kws) != 0 {
		t.Errorf("comparison has no keywords: %v", kws)
	}
}

func TestColumnFeasible(t *testing.T) {
	st := statsFor(t, value.Decimal, value.NewDecimal(53.2), value.NewDecimal(497), value.NewDecimal(981))
	has := func(kw string) bool { return kw == "497" || kw == "53.2" }
	cases := []struct {
		in   string
		want bool
	}{
		{"497", true},
		{"500", false},
		{">= 100", true},
		{">= 2000", false},
		{"> 981", false},
		{"> 980", true},
		{"<= 53.2", true},
		{"< 53.2", false},
		{"<= 10", false},
		{"[400, 600]", true},
		{"[1000, 2000]", false},
		{"[0, 10]", false},
		{"497 && >= 100", true},
		{"500 && >= 100", false},
		{"500 || >= 100", true},
		{"!= 0", true},
		{"NOT 497", true}, // conservative
	}
	for _, c := range cases {
		e := MustParseValueConstraint(c.in)
		if got := ColumnFeasible(e, st, has); got != c.want {
			t.Errorf("ColumnFeasible(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if !ColumnFeasible(nil, st, has) {
		t.Error("nil constraint is always feasible")
	}
	empty := statsFor(t, value.Decimal)
	if ColumnFeasible(MustParseValueConstraint(">= 0"), empty, has) {
		t.Error("empty column is never feasible")
	}
}

func TestColumnFeasibleNeverFalseNegative(t *testing.T) {
	// Property: if some value in the column satisfies the constraint, the
	// column must be reported feasible.
	vals := []value.Value{
		value.NewDecimal(53.2), value.NewDecimal(497), value.NewDecimal(981), value.NewDecimal(0),
	}
	st := statsFor(t, value.Decimal, vals...)
	has := func(kw string) bool {
		for _, v := range vals {
			if v.MatchesKeyword(kw) {
				return true
			}
		}
		return false
	}
	exprs := []string{
		"497", "0", ">= 900", "<= 0", "[53, 54]", "497 || 5000", ">= 0 && <= 1",
		"!= 53.2", "NOT 497", "> 980.9",
	}
	for _, in := range exprs {
		e := MustParseValueConstraint(in)
		satisfiable := false
		for _, v := range vals {
			if e.Eval(v) {
				satisfiable = true
				break
			}
		}
		if satisfiable && !ColumnFeasible(e, st, has) {
			t.Errorf("constraint %q is satisfiable but reported infeasible", in)
		}
	}
}

func TestValueExprStringsRoundTrip(t *testing.T) {
	inputs := []string{
		"Lake Tahoe",
		"California || Nevada",
		">= 100 && <= 600",
		"[100, 600]",
		"!= 0",
		"NOT (California || Nevada)",
		"'Lake (Tahoe)'",
	}
	for _, in := range inputs {
		e := MustParseValueConstraint(in)
		rendered := e.String()
		back, err := ParseValueConstraint(rendered)
		if err != nil {
			t.Errorf("re-parse of %q (from %q) failed: %v", rendered, in, err)
			continue
		}
		// Evaluate both on a probe set and require identical behaviour.
		probes := []value.Value{
			value.NewText("Lake Tahoe"), value.NewText("California"), value.NewText("Nevada"),
			value.NewText("Oregon"), value.NewInt(0), value.NewInt(100), value.NewDecimal(497),
			value.NewDecimal(600), value.NewDecimal(601), value.NullValue, value.NewText("Lake (Tahoe)"),
		}
		for _, p := range probes {
			if e.Eval(p) != back.Eval(p) {
				t.Errorf("round trip of %q changed semantics on %v", in, p)
			}
		}
	}
}

func TestMetaExprStringsRoundTrip(t *testing.T) {
	inputs := []string{
		"DataType == 'decimal' AND MinValue >= '0'",
		"ColumnName = 'Area' OR ColumnName = 'Size'",
		"MaxLength <= 30",
		"(DataType = 'text' OR DataType = 'int') AND MaxValue <= 100",
	}
	stats := []schema.Stats{
		statsFor(t, value.Decimal, value.NewDecimal(0), value.NewDecimal(55)),
		statsFor(t, value.Text, value.NewText("abc"), value.NewText("a-very-long-name")),
		statsFor(t, value.Int, value.NewInt(5), value.NewInt(500)),
	}
	for _, in := range inputs {
		e := MustParseMetadataConstraint(in)
		back, err := ParseMetadataConstraint(e.String())
		if err != nil {
			t.Errorf("re-parse of %q failed: %v", e.String(), err)
			continue
		}
		for _, st := range stats {
			if e.Eval(st) != back.Eval(st) {
				t.Errorf("round trip of %q changed semantics on %v", in, st.Ref)
			}
		}
	}
}

func TestResolutionString(t *testing.T) {
	if ResolutionHigh.String() != "high" || ResolutionMedium.String() != "medium" || ResolutionLow.String() != "low" {
		t.Error("resolution names")
	}
	if Resolution(9).String() == "" {
		t.Error("unknown resolution should render")
	}
	if MustParseValueConstraint("= 5 && >= 0").Resolution() != ResolutionHigh {
		t.Error("conjunction containing equality is high resolution")
	}
	if MustParseValueConstraint(">= 0 && <= 1").Resolution() != ResolutionMedium {
		t.Error("pure comparison conjunction is medium resolution")
	}
}

func TestNeedsQuotingAndKeywordString(t *testing.T) {
	if (Keyword{Word: "Lake Tahoe"}).String() != "Lake Tahoe" {
		t.Error("plain keyword should not be quoted")
	}
	if (Keyword{Word: "a||b"}).String() != "'a||b'" {
		t.Error("operator-containing keyword should be quoted")
	}
	if (Keyword{Word: ""}).String() != "''" {
		t.Error("empty keyword renders as quotes")
	}
	if (Compare{Op: OpGe, Const: value.NewText("it's")}).String() != ">= 'it''s'" {
		t.Errorf("quote escaping: %q", Compare{Op: OpGe, Const: value.NewText("it's")}.String())
	}
}

func TestWildcardMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"ar%", "area", true},
		{"%ea", "area", true},
		{"a%a", "area", true},
		{"a*a", "area", true},
		{"%r%", "area", true},
		{"x%", "area", false},
		{"area", "area", true},
		{"are", "area", false},
		{"%x%y%", "axbyc", true},
		{"%x%y%", "aybxc", false},
	}
	for _, c := range cases {
		if got := wildcardMatch(c.pattern, c.s); got != c.want {
			t.Errorf("wildcardMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
}

// Property: for random generated range constraints, Eval agrees with direct
// interval arithmetic.
func TestRangeProperty(t *testing.T) {
	f := func(lo, hi, probe int16) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		r := Range{Lo: value.NewInt(int64(lo)), Hi: value.NewInt(int64(hi))}
		want := probe >= lo && probe <= hi
		return r.Eval(value.NewInt(int64(probe))) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: lexing never panics and either errors or ends with EOF.
func TestLexTotal(t *testing.T) {
	f := func(s string) bool {
		toks, err := Lex(s)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokenEOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseValueConstraint(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseValueConstraint("(California || Nevada) && >= 100 && <= 600"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseMetadataConstraint(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseMetadataConstraint("DataType=='decimal' AND MinValue>='0' AND MaxLength <= 12"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalValueConstraint(b *testing.B) {
	e := MustParseValueConstraint("(California || Nevada) && != 'Utah'")
	v := value.NewText("Nevada")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !e.Eval(v) {
			b.Fatal("unexpected eval result")
		}
	}
}
