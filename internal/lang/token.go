// Package lang implements the Multiresolution Schema Mapping Language of
// the paper's Figure 1: row-level value constraints (exact keywords,
// disjunctions of possible values, value ranges, comparisons) and
// column-level metadata constraints (data type, column name, min/max value,
// max text length), combined with AND/OR.
//
// The package provides a lexer, a recursive-descent parser, the constraint
// AST, evaluation of value constraints against cell values, evaluation of
// metadata constraints against preprocessed column statistics, and
// conservative feasibility tests used by related-column search.
package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

const (
	// TokenEOF marks the end of input.
	TokenEOF TokenKind = iota
	// TokenWord is a bare word (part of a keyword or a field name).
	TokenWord
	// TokenString is a quoted string literal ('...' or "...").
	TokenString
	// TokenNumber is a numeric literal.
	TokenNumber
	// TokenOp is a comparison operator: = == != <> < <= > >=.
	TokenOp
	// TokenAnd is the logical AND (keyword AND or &&).
	TokenAnd
	// TokenOr is the logical OR (keyword OR or ||).
	TokenOr
	// TokenNot is the logical NOT (keyword NOT or !).
	TokenNot
	// TokenLParen and friends are punctuation.
	TokenLParen
	TokenRParen
	TokenLBracket
	TokenRBracket
	TokenComma
)

// String names the token kind.
func (k TokenKind) String() string {
	switch k {
	case TokenEOF:
		return "EOF"
	case TokenWord:
		return "word"
	case TokenString:
		return "string"
	case TokenNumber:
		return "number"
	case TokenOp:
		return "operator"
	case TokenAnd:
		return "AND"
	case TokenOr:
		return "OR"
	case TokenNot:
		return "NOT"
	case TokenLParen:
		return "("
	case TokenRParen:
		return ")"
	case TokenLBracket:
		return "["
	case TokenRBracket:
		return "]"
	case TokenComma:
		return ","
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// Token is one lexical unit with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// String renders the token for error messages.
func (t Token) String() string {
	if t.Kind == TokenEOF {
		return "end of input"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// SyntaxError reports a parse failure with position information.
type SyntaxError struct {
	Input string
	Pos   int
	Msg   string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("lang: %s at position %d in %q", e.Msg, e.Pos, e.Input)
}

func errorf(input string, pos int, format string, args ...any) error {
	return &SyntaxError{Input: input, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Lex tokenises a constraint expression. Quoted strings may use single,
// double or typographic quotes (the paper's examples use ‘…’). Runs of
// unquoted words are emitted as individual word tokens; the parser merges
// adjacent words into multi-word keywords such as "Lake Tahoe".
func Lex(input string) ([]Token, error) {
	var toks []Token
	runes := []rune(input)
	i := 0
	n := len(runes)
	byteOffset := func(ri int) int {
		return len(string(runes[:ri]))
	}
	for i < n {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(':
			toks = append(toks, Token{Kind: TokenLParen, Text: "(", Pos: byteOffset(i)})
			i++
		case r == ')':
			toks = append(toks, Token{Kind: TokenRParen, Text: ")", Pos: byteOffset(i)})
			i++
		case r == '[':
			toks = append(toks, Token{Kind: TokenLBracket, Text: "[", Pos: byteOffset(i)})
			i++
		case r == ']':
			toks = append(toks, Token{Kind: TokenRBracket, Text: "]", Pos: byteOffset(i)})
			i++
		case r == ',':
			toks = append(toks, Token{Kind: TokenComma, Text: ",", Pos: byteOffset(i)})
			i++
		case r == '&':
			if i+1 < n && runes[i+1] == '&' {
				toks = append(toks, Token{Kind: TokenAnd, Text: "&&", Pos: byteOffset(i)})
				i += 2
			} else {
				return nil, errorf(input, byteOffset(i), "unexpected '&' (use '&&' or AND)")
			}
		case r == '|':
			if i+1 < n && runes[i+1] == '|' {
				toks = append(toks, Token{Kind: TokenOr, Text: "||", Pos: byteOffset(i)})
				i += 2
			} else {
				return nil, errorf(input, byteOffset(i), "unexpected '|' (use '||' or OR)")
			}
		case r == '!':
			if i+1 < n && runes[i+1] == '=' {
				toks = append(toks, Token{Kind: TokenOp, Text: "!=", Pos: byteOffset(i)})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokenNot, Text: "!", Pos: byteOffset(i)})
				i++
			}
		case r == '=':
			if i+1 < n && runes[i+1] == '=' {
				toks = append(toks, Token{Kind: TokenOp, Text: "==", Pos: byteOffset(i)})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokenOp, Text: "=", Pos: byteOffset(i)})
				i++
			}
		case r == '<':
			switch {
			case i+1 < n && runes[i+1] == '=':
				toks = append(toks, Token{Kind: TokenOp, Text: "<=", Pos: byteOffset(i)})
				i += 2
			case i+1 < n && runes[i+1] == '>':
				toks = append(toks, Token{Kind: TokenOp, Text: "!=", Pos: byteOffset(i)})
				i += 2
			default:
				toks = append(toks, Token{Kind: TokenOp, Text: "<", Pos: byteOffset(i)})
				i++
			}
		case r == '>':
			if i+1 < n && runes[i+1] == '=' {
				toks = append(toks, Token{Kind: TokenOp, Text: ">=", Pos: byteOffset(i)})
				i += 2
			} else {
				toks = append(toks, Token{Kind: TokenOp, Text: ">", Pos: byteOffset(i)})
				i++
			}
		case r == '\'' || r == '"' || r == '‘' || r == '“':
			closer := map[rune][]rune{
				'\'': {'\''},
				'"':  {'"'},
				'‘':  {'’', '\''},
				'“':  {'”', '"'},
			}[r]
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				c := runes[i]
				isCloser := false
				for _, cl := range closer {
					if c == cl {
						isCloser = true
						break
					}
				}
				if isCloser {
					closed = true
					i++
					break
				}
				sb.WriteRune(c)
				i++
			}
			if !closed {
				return nil, errorf(input, byteOffset(start), "unterminated string literal")
			}
			toks = append(toks, Token{Kind: TokenString, Text: sb.String(), Pos: byteOffset(start)})
		case unicode.IsDigit(r) || (r == '-' && i+1 < n && unicode.IsDigit(runes[i+1]) && startsValue(toks)):
			start := i
			i++
			for i < n && (unicode.IsDigit(runes[i]) || runes[i] == '.') {
				i++
			}
			toks = append(toks, Token{Kind: TokenNumber, Text: string(runes[start:i]), Pos: byteOffset(start)})
		default:
			// Bare word: letters, digits, and a few safe punctuation marks.
			start := i
			for i < n && isWordRune(runes[i]) {
				i++
			}
			if i == start {
				return nil, errorf(input, byteOffset(i), "unexpected character %q", string(r))
			}
			word := string(runes[start:i])
			switch strings.ToUpper(word) {
			case "AND":
				toks = append(toks, Token{Kind: TokenAnd, Text: word, Pos: byteOffset(start)})
			case "OR":
				toks = append(toks, Token{Kind: TokenOr, Text: word, Pos: byteOffset(start)})
			case "NOT":
				toks = append(toks, Token{Kind: TokenNot, Text: word, Pos: byteOffset(start)})
			default:
				toks = append(toks, Token{Kind: TokenWord, Text: word, Pos: byteOffset(start)})
			}
		}
	}
	toks = append(toks, Token{Kind: TokenEOF, Pos: len(input)})
	return toks, nil
}

// startsValue reports whether the next token can begin a value, which is
// the position where a leading '-' should be treated as a numeric sign.
func startsValue(toks []Token) bool {
	if len(toks) == 0 {
		return true
	}
	switch toks[len(toks)-1].Kind {
	case TokenOp, TokenAnd, TokenOr, TokenNot, TokenLParen, TokenLBracket, TokenComma:
		return true
	default:
		return false
	}
}

func isWordRune(r rune) bool {
	if unicode.IsLetter(r) || unicode.IsDigit(r) {
		return true
	}
	switch r {
	case '_', '-', '.', '/', ':', '%', '#', '\'':
		// Apostrophes inside words (O'Brien) are handled by quoting instead;
		// keep them out of bare words to avoid ambiguity with string quotes.
		return r != '\''
	default:
		return false
	}
}
