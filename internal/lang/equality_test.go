package lang

import (
	"testing"

	"prism/internal/value"
)

// TestEqualityKeywords checks which constraint shapes yield a keyword
// cover, and that covers are complete: Eval(v) must imply MatchesKeyword
// against one of the returned keywords (executors rely on this to index).
func TestEqualityKeywords(t *testing.T) {
	parse := func(cell string) ValueExpr {
		e, err := ParseValueConstraint(cell)
		if err != nil {
			t.Fatalf("parse %q: %v", cell, err)
		}
		return e
	}
	cases := []struct {
		cell string
		want []string
		ok   bool
	}{
		{"Lake Tahoe", []string{"Lake Tahoe"}, true},
		{"California || Nevada", []string{"California", "Nevada"}, true},
		{"== 497", []string{"497"}, true},
		{">= 100", nil, false},
		{"[100, 600]", nil, false},
		{"NOT (Nevada)", nil, false},
		// A conjunction is covered by its equality-shaped term.
		{"Nevada && >= 0", []string{"Nevada"}, true},
	}
	// Date/Time equality constants (reachable through programmatically
	// built specs, e.g. the workload generator sampling a date column)
	// compare numerically against numeric cells under Compare, which no
	// finite keyword list covers — they must refuse a cover.
	if _, ok := EqualityKeywords(Compare{Op: OpEq, Const: value.Parse("2020-01-31")}); ok {
		t.Error("a Date equality constant must not claim a keyword cover")
	}

	for _, tc := range cases {
		got, ok := EqualityKeywords(parse(tc.cell))
		if ok != tc.ok {
			t.Errorf("EqualityKeywords(%q) ok = %v, want %v", tc.cell, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("EqualityKeywords(%q) = %v, want %v", tc.cell, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("EqualityKeywords(%q) = %v, want %v", tc.cell, got, tc.want)
			}
		}
	}

	// Completeness property over a value corpus: whenever a covered
	// expression accepts a value, the keyword list must match it too.
	corpus := []value.Value{
		value.NewText("Lake Tahoe"), value.NewText("Nevada"), value.NewText("497"),
		value.NewInt(497), value.NewDecimal(497), value.NewInt(1580428800),
		value.Parse("2020-01-31"), value.NullValue,
	}
	for _, cell := range []string{"Lake Tahoe", "California || Nevada", "== 497", "Nevada && >= 0"} {
		expr := parse(cell)
		kws, ok := EqualityKeywords(expr)
		if !ok {
			t.Fatalf("expected cover for %q", cell)
		}
		for _, v := range corpus {
			if !expr.Eval(v) {
				continue
			}
			matched := false
			for _, kw := range kws {
				if v.MatchesKeyword(kw) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("cover violated: %q accepts %v but keywords %v do not match it", cell, v, kws)
			}
		}
	}
}
