package lang

import (
	"strings"

	"prism/internal/value"
)

// ParseValueConstraint parses one cell of the Sample/Result Constraints
// grid into a value-constraint expression.
//
// Accepted forms (all composable with AND/&&, OR/||, NOT and parentheses):
//
//	Lake Tahoe                 exact keyword (high resolution)
//	California || Nevada       disjunction of keywords
//	>= 100 && <= 600           comparison conjunction
//	[100, 600]                 closed range shorthand
//	= 'Lake Tahoe'             explicit equality with quoting
//	!= 0                       inequality
//
// An empty or all-whitespace cell returns (nil, nil): no constraint on that
// column (a "missing value" in the paper's terminology).
func ParseValueConstraint(input string) (ValueExpr, error) {
	if strings.TrimSpace(input) == "" {
		return nil, nil
	}
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{input: input, toks: toks}
	expr, err := p.parseValueOr()
	if err != nil {
		return nil, err
	}
	if !p.at(TokenEOF) {
		return nil, errorf(input, p.peek().Pos, "unexpected %s", p.peek())
	}
	return expr, nil
}

// MustParseValueConstraint is ParseValueConstraint that panics on error; it
// is intended for tests and static workload definitions.
func MustParseValueConstraint(input string) ValueExpr {
	e, err := ParseValueConstraint(input)
	if err != nil {
		panic(err)
	}
	return e
}

// ParseMetadataConstraint parses one cell of the Metadata Constraints grid,
// e.g.
//
//	DataType == 'decimal' AND MinValue >= '0'
//	ColumnName = 'Area' OR ColumnName = 'Size'
//	MaxLength <= 30
//
// An empty cell returns (nil, nil): no metadata constraint for that column.
func ParseMetadataConstraint(input string) (MetaExpr, error) {
	if strings.TrimSpace(input) == "" {
		return nil, nil
	}
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{input: input, toks: toks}
	expr, err := p.parseMetaOr()
	if err != nil {
		return nil, err
	}
	if !p.at(TokenEOF) {
		return nil, errorf(input, p.peek().Pos, "unexpected %s", p.peek())
	}
	return expr, nil
}

// MustParseMetadataConstraint is ParseMetadataConstraint that panics on
// error.
func MustParseMetadataConstraint(input string) MetaExpr {
	e, err := ParseMetadataConstraint(input)
	if err != nil {
		panic(err)
	}
	return e
}

// ParseSampleRow parses one row of the sample-constraint grid: one cell per
// target column. Empty cells produce nil entries (unconstrained columns).
func ParseSampleRow(cells []string) ([]ValueExpr, error) {
	out := make([]ValueExpr, len(cells))
	for i, cell := range cells {
		e, err := ParseValueConstraint(cell)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// ParseMetadataRow parses the metadata-constraint row: one cell per target
// column, empty cells producing nil entries.
func ParseMetadataRow(cells []string) ([]MetaExpr, error) {
	out := make([]MetaExpr, len(cells))
	for i, cell := range cells {
		e, err := ParseMetadataConstraint(cell)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	input string
	toks  []Token
	pos   int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k TokenKind) bool {
	return p.toks[p.pos].Kind == k
}

func (p *parser) accept(k TokenKind) (Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return Token{}, false
}

// ---------------------------------------------------------------------------
// Value constraints
// ---------------------------------------------------------------------------

func (p *parser) parseValueOr() (ValueExpr, error) {
	left, err := p.parseValueAnd()
	if err != nil {
		return nil, err
	}
	terms := []ValueExpr{left}
	for p.at(TokenOr) {
		p.next()
		right, err := p.parseValueAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return Or{Terms: terms}, nil
}

func (p *parser) parseValueAnd() (ValueExpr, error) {
	left, err := p.parseValueUnary()
	if err != nil {
		return nil, err
	}
	terms := []ValueExpr{left}
	for p.at(TokenAnd) {
		p.next()
		right, err := p.parseValueUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return And{Terms: terms}, nil
}

func (p *parser) parseValueUnary() (ValueExpr, error) {
	if _, ok := p.accept(TokenNot); ok {
		term, err := p.parseValueUnary()
		if err != nil {
			return nil, err
		}
		return Not{Term: term}, nil
	}
	return p.parseValuePrimary()
}

func (p *parser) parseValuePrimary() (ValueExpr, error) {
	switch tok := p.peek(); tok.Kind {
	case TokenLParen:
		p.next()
		inner, err := p.parseValueOr()
		if err != nil {
			return nil, err
		}
		if _, ok := p.accept(TokenRParen); !ok {
			return nil, errorf(p.input, p.peek().Pos, "expected ')', found %s", p.peek())
		}
		return inner, nil
	case TokenLBracket:
		return p.parseRange()
	case TokenOp:
		p.next()
		op, err := ParseBinOp(tok.Text)
		if err != nil {
			return nil, errorf(p.input, tok.Pos, "%v", err)
		}
		constVal, err := p.parseConstant()
		if err != nil {
			return nil, err
		}
		if op == OpEq {
			// "= keyword" is the same as a bare keyword; keep Keyword so the
			// inverted index can be used uniformly.
			return Keyword{Word: constVal.String()}, nil
		}
		return Compare{Op: op, Const: constVal}, nil
	case TokenWord, TokenNumber, TokenString:
		word, err := p.parseKeywordText()
		if err != nil {
			return nil, err
		}
		return Keyword{Word: word}, nil
	default:
		return nil, errorf(p.input, tok.Pos, "expected a value constraint, found %s", tok)
	}
}

func (p *parser) parseRange() (ValueExpr, error) {
	open := p.next() // '['
	lo, err := p.parseConstant()
	if err != nil {
		return nil, err
	}
	if _, ok := p.accept(TokenComma); !ok {
		return nil, errorf(p.input, p.peek().Pos, "expected ',' in range, found %s", p.peek())
	}
	hi, err := p.parseConstant()
	if err != nil {
		return nil, err
	}
	if _, ok := p.accept(TokenRBracket); !ok {
		return nil, errorf(p.input, p.peek().Pos, "expected ']' closing range, found %s", p.peek())
	}
	if lo.Compare(hi) > 0 {
		return nil, errorf(p.input, open.Pos, "empty range: %s > %s", lo, hi)
	}
	return Range{Lo: lo, Hi: hi}, nil
}

// parseConstant reads a single literal: a quoted string, a number, or a run
// of bare words.
func (p *parser) parseConstant() (value.Value, error) {
	switch tok := p.peek(); tok.Kind {
	case TokenString:
		p.next()
		return value.Parse(tok.Text), nil
	case TokenNumber:
		p.next()
		return value.Parse(tok.Text), nil
	case TokenWord:
		word, err := p.parseKeywordText()
		if err != nil {
			return value.NullValue, err
		}
		return value.Parse(word), nil
	default:
		return value.NullValue, errorf(p.input, tok.Pos, "expected a constant, found %s", tok)
	}
}

// parseKeywordText consumes a maximal run of adjacent word/number/string
// tokens and returns the original source text they span, with whitespace
// collapsed, so multi-word keywords ("Lake Tahoe", "Fort Peck Lake") and
// hyphenated literals ("2019-01-13") survive intact.
func (p *parser) parseKeywordText() (string, error) {
	start := p.peek()
	if start.Kind != TokenWord && start.Kind != TokenNumber && start.Kind != TokenString {
		return "", errorf(p.input, start.Pos, "expected a keyword, found %s", start)
	}
	if start.Kind == TokenString {
		p.next()
		return start.Text, nil
	}
	last := start
	for p.at(TokenWord) || p.at(TokenNumber) {
		last = p.next()
	}
	end := last.Pos + len(last.Text)
	if end > len(p.input) {
		end = len(p.input)
	}
	raw := p.input[start.Pos:end]
	return strings.Join(strings.Fields(raw), " "), nil
}

// ---------------------------------------------------------------------------
// Metadata constraints
// ---------------------------------------------------------------------------

func (p *parser) parseMetaOr() (MetaExpr, error) {
	left, err := p.parseMetaAnd()
	if err != nil {
		return nil, err
	}
	terms := []MetaExpr{left}
	for p.at(TokenOr) {
		p.next()
		right, err := p.parseMetaAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return MetaOr{Terms: terms}, nil
}

func (p *parser) parseMetaAnd() (MetaExpr, error) {
	left, err := p.parseMetaPrimary()
	if err != nil {
		return nil, err
	}
	terms := []MetaExpr{left}
	for p.at(TokenAnd) {
		p.next()
		right, err := p.parseMetaPrimary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, right)
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return MetaAnd{Terms: terms}, nil
}

func (p *parser) parseMetaPrimary() (MetaExpr, error) {
	if _, ok := p.accept(TokenLParen); ok {
		inner, err := p.parseMetaOr()
		if err != nil {
			return nil, err
		}
		if _, ok := p.accept(TokenRParen); !ok {
			return nil, errorf(p.input, p.peek().Pos, "expected ')', found %s", p.peek())
		}
		return inner, nil
	}
	fieldTok, ok := p.accept(TokenWord)
	if !ok {
		return nil, errorf(p.input, p.peek().Pos, "expected a metadata field, found %s", p.peek())
	}
	field, err := ParseMetaField(fieldTok.Text)
	if err != nil {
		return nil, errorf(p.input, fieldTok.Pos, "%v", err)
	}
	opTok, ok := p.accept(TokenOp)
	if !ok {
		return nil, errorf(p.input, p.peek().Pos, "expected an operator after %s, found %s", field, p.peek())
	}
	op, err := ParseBinOp(opTok.Text)
	if err != nil {
		return nil, errorf(p.input, opTok.Pos, "%v", err)
	}
	constVal, err := p.parseConstant()
	if err != nil {
		return nil, err
	}
	return MetaPredicate{Field: field, Op: op, Const: constVal.String()}, nil
}
