package lang

import (
	"fmt"
	"strings"

	"prism/internal/schema"
	"prism/internal/value"
)

// BinOp is a comparison operator of the constraint grammar.
type BinOp uint8

const (
	// OpEq is equality (= or ==).
	OpEq BinOp = iota
	// OpNe is inequality (!= or <>).
	OpNe
	// OpLt, OpLe, OpGt, OpGe are the orderings.
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator in canonical form.
func (op BinOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// ParseBinOp converts operator text to a BinOp.
func ParseBinOp(s string) (BinOp, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "!=", "<>":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	default:
		return OpEq, fmt.Errorf("lang: unknown operator %q", s)
	}
}

// apply evaluates "left op right" under Value.Compare semantics.
func (op BinOp) apply(left, right value.Value) bool {
	c := left.Compare(right)
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// applyInt evaluates "left op right" for integers.
func (op BinOp) applyInt(left, right int) bool {
	switch op {
	case OpEq:
		return left == right
	case OpNe:
		return left != right
	case OpLt:
		return left < right
	case OpLe:
		return left <= right
	case OpGt:
		return left > right
	case OpGe:
		return left >= right
	default:
		return false
	}
}

// ValueExpr is a row-level value constraint on a single target column: the
// ck production of Figure 1, extended with ranges and negation.
type ValueExpr interface {
	// Eval reports whether the cell value satisfies the constraint.
	Eval(v value.Value) bool
	// String renders the constraint in canonical language syntax.
	String() string
	// Resolution classifies how precise the constraint is.
	Resolution() Resolution
}

// MetaExpr is a column-level metadata constraint: the cm production of
// Figure 1. It is evaluated against preprocessed column statistics.
type MetaExpr interface {
	// Eval reports whether a column with the given statistics satisfies the
	// constraint.
	Eval(st schema.Stats) bool
	// String renders the constraint in canonical language syntax.
	String() string
}

// Resolution classifies constraint precision, mirroring the paper's
// high/medium/low terminology.
type Resolution uint8

const (
	// ResolutionHigh is an exact value (complete sample cell).
	ResolutionHigh Resolution = iota
	// ResolutionMedium is an approximate value: disjunction of candidates,
	// range, or comparison.
	ResolutionMedium
	// ResolutionLow is column-level metadata only (no row-level value).
	ResolutionLow
)

// String names the resolution level.
func (r Resolution) String() string {
	switch r {
	case ResolutionHigh:
		return "high"
	case ResolutionMedium:
		return "medium"
	case ResolutionLow:
		return "low"
	default:
		return fmt.Sprintf("resolution(%d)", uint8(r))
	}
}

// ---------------------------------------------------------------------------
// Value-constraint AST nodes
// ---------------------------------------------------------------------------

// Keyword is an exact-value predicate: the cell must equal the keyword
// (case-insensitive text, numeric when the keyword is numeric). A bare cell
// such as "Lake Tahoe" parses to a Keyword.
type Keyword struct {
	Word string
}

// Eval implements ValueExpr.
func (k Keyword) Eval(v value.Value) bool { return v.MatchesKeyword(k.Word) }

// String implements ValueExpr.
func (k Keyword) String() string {
	if needsQuoting(k.Word) {
		return "'" + strings.ReplaceAll(k.Word, "'", "''") + "'"
	}
	return k.Word
}

// Resolution implements ValueExpr: an exact keyword is high resolution.
func (k Keyword) Resolution() Resolution { return ResolutionHigh }

// Compare is a value predicate "binop const": the pv production.
type Compare struct {
	Op    BinOp
	Const value.Value
}

// Eval implements ValueExpr.
func (c Compare) Eval(v value.Value) bool {
	if v.IsNull() {
		return false
	}
	return c.Op.apply(v, c.Const)
}

// String implements ValueExpr.
func (c Compare) String() string { return c.Op.String() + " " + quoteConst(c.Const) }

// Resolution implements ValueExpr: equality is high resolution, everything
// else is approximate.
func (c Compare) Resolution() Resolution {
	if c.Op == OpEq {
		return ResolutionHigh
	}
	return ResolutionMedium
}

// Range is the closed interval shorthand "[lo, hi]".
type Range struct {
	Lo, Hi value.Value
}

// Eval implements ValueExpr.
func (r Range) Eval(v value.Value) bool {
	if v.IsNull() {
		return false
	}
	return v.Compare(r.Lo) >= 0 && v.Compare(r.Hi) <= 0
}

// String implements ValueExpr.
func (r Range) String() string { return "[" + quoteConst(r.Lo) + ", " + quoteConst(r.Hi) + "]" }

// Resolution implements ValueExpr.
func (r Range) Resolution() Resolution { return ResolutionMedium }

// And is the conjunction of value constraints.
type And struct {
	Terms []ValueExpr
}

// Eval implements ValueExpr.
func (a And) Eval(v value.Value) bool {
	for _, t := range a.Terms {
		if !t.Eval(v) {
			return false
		}
	}
	return true
}

// String implements ValueExpr.
func (a And) String() string { return joinExprs(a.Terms, " && ") }

// Resolution implements ValueExpr: the conjunction is as precise as its most
// precise term.
func (a And) Resolution() Resolution {
	res := ResolutionMedium
	for _, t := range a.Terms {
		if t.Resolution() == ResolutionHigh {
			res = ResolutionHigh
		}
	}
	return res
}

// Or is the disjunction of value constraints, e.g. "California || Nevada".
type Or struct {
	Terms []ValueExpr
}

// Eval implements ValueExpr.
func (o Or) Eval(v value.Value) bool {
	for _, t := range o.Terms {
		if t.Eval(v) {
			return true
		}
	}
	return false
}

// String implements ValueExpr.
func (o Or) String() string { return joinExprs(o.Terms, " || ") }

// Resolution implements ValueExpr: a disjunction is approximate even when
// its branches are exact values.
func (o Or) Resolution() Resolution { return ResolutionMedium }

// Not negates a value constraint (a small extension beyond Figure 1 that the
// parser accepts for completeness).
type Not struct {
	Term ValueExpr
}

// Eval implements ValueExpr.
func (n Not) Eval(v value.Value) bool { return !n.Term.Eval(v) }

// String implements ValueExpr.
func (n Not) String() string { return "NOT (" + n.Term.String() + ")" }

// Resolution implements ValueExpr.
func (n Not) Resolution() Resolution { return ResolutionMedium }

func joinExprs(terms []ValueExpr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		s := t.String()
		switch t.(type) {
		case And, Or:
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

func needsQuoting(word string) bool {
	if word == "" {
		return true
	}
	for _, r := range word {
		switch r {
		case '\'', '"', '(', ')', '[', ']', ',', '=', '<', '>', '!', '&', '|':
			return true
		}
	}
	return strings.ContainsAny(word, "\t\n")
}

func quoteConst(v value.Value) string {
	if v.Kind() == value.Text {
		return "'" + strings.ReplaceAll(v.Text(), "'", "''") + "'"
	}
	return v.String()
}

// ---------------------------------------------------------------------------
// Value-constraint analysis helpers
// ---------------------------------------------------------------------------

// Keywords returns every exact constant mentioned by equality predicates and
// keywords inside the expression. Related-column search probes the inverted
// index with these.
func Keywords(e ValueExpr) []string {
	var out []string
	var walk func(ValueExpr)
	walk = func(e ValueExpr) {
		switch n := e.(type) {
		case Keyword:
			out = append(out, n.Word)
		case Compare:
			if n.Op == OpEq {
				out = append(out, n.Const.String())
			}
		case And:
			for _, t := range n.Terms {
				walk(t)
			}
		case Or:
			for _, t := range n.Terms {
				walk(t)
			}
		case Not:
			walk(n.Term)
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}

// EqualityKeywords analyses whether the expression is equality-shaped: a
// keyword, an equality comparison, a disjunction of such terms, or a
// conjunction containing at least one equality-shaped term. When ok, the
// returned keywords are a complete cover — Eval(v) implies
// v.MatchesKeyword(k) for some returned k — so an executor with a keyword
// index may select candidate rows by point lookup and re-check them with
// Eval. ok is false for range, ordering and negation shapes, which have no
// finite keyword cover.
func EqualityKeywords(e ValueExpr) (keywords []string, ok bool) {
	switch n := e.(type) {
	case Keyword:
		return []string{n.Word}, true
	case Compare:
		if n.Op == OpEq {
			// Date/Time constants compare numerically against numeric cells
			// (unix seconds) under Compare, which MatchesKeyword cannot
			// express with a finite keyword list; leave those to a scan.
			if k := n.Const.Kind(); k == value.Date || k == value.Time {
				return nil, false
			}
			return []string{n.Const.String()}, true
		}
		return nil, false
	case Or:
		var out []string
		for _, t := range n.Terms {
			kws, tok := EqualityKeywords(t)
			if !tok {
				// One non-equality branch makes the disjunction uncoverable.
				return nil, false
			}
			out = append(out, kws...)
		}
		return out, len(out) > 0
	case And:
		// A conjunction is covered by any one equality-shaped term: Eval
		// implies that term's Eval, which implies its keyword cover.
		for _, t := range n.Terms {
			if kws, tok := EqualityKeywords(t); tok {
				return kws, true
			}
		}
		return nil, false
	default:
		return nil, false
	}
}

// ColumnFeasible conservatively reports whether some value stored in a
// column with the given statistics could satisfy the constraint. hasKeyword
// answers whether the column contains an exact keyword (via the inverted
// index). False negatives are not allowed (a false "infeasible" would prune
// a valid mapping); false positives merely cost extra validation work.
func ColumnFeasible(e ValueExpr, st schema.Stats, hasKeyword func(string) bool) bool {
	if e == nil {
		return true
	}
	if st.NonNullCount() == 0 {
		return false
	}
	switch n := e.(type) {
	case Keyword:
		return hasKeyword(n.Word)
	case Compare:
		switch n.Op {
		case OpEq:
			return hasKeyword(n.Const.String())
		case OpNe:
			// Feasible unless every value equals the constant.
			return st.Distinct > 1 || !st.Min.Equal(n.Const)
		case OpLt:
			return st.Min.Compare(n.Const) < 0
		case OpLe:
			return st.Min.Compare(n.Const) <= 0
		case OpGt:
			return st.Max.Compare(n.Const) > 0
		case OpGe:
			return st.Max.Compare(n.Const) >= 0
		}
		return true
	case Range:
		return st.Max.Compare(n.Lo) >= 0 && st.Min.Compare(n.Hi) <= 0
	case And:
		for _, t := range n.Terms {
			if !ColumnFeasible(t, st, hasKeyword) {
				return false
			}
		}
		return true
	case Or:
		for _, t := range n.Terms {
			if ColumnFeasible(t, st, hasKeyword) {
				return true
			}
		}
		return false
	case Not:
		// Conservative: do not prune on negations.
		return true
	default:
		return true
	}
}

// ---------------------------------------------------------------------------
// Metadata-constraint AST nodes
// ---------------------------------------------------------------------------

// MetaField identifies which column statistic a metadata predicate tests:
// the "Metadata Type" production of Figure 1 (DataType, ColumnName,
// MaxValue, MinValue) plus MaxLength, which the running system supports.
type MetaField uint8

const (
	// FieldDataType tests the declared column type.
	FieldDataType MetaField = iota
	// FieldColumnName tests the column name.
	FieldColumnName
	// FieldMaxValue tests the maximum stored value.
	FieldMaxValue
	// FieldMinValue tests the minimum stored value.
	FieldMinValue
	// FieldMaxLength tests the maximum rendered text length.
	FieldMaxLength
	// FieldTableName tests the table name (an extension useful when the
	// user knows roughly where data lives).
	FieldTableName
)

// String renders the canonical field name.
func (f MetaField) String() string {
	switch f {
	case FieldDataType:
		return "DataType"
	case FieldColumnName:
		return "ColumnName"
	case FieldMaxValue:
		return "MaxValue"
	case FieldMinValue:
		return "MinValue"
	case FieldMaxLength:
		return "MaxLength"
	case FieldTableName:
		return "TableName"
	default:
		return fmt.Sprintf("field(%d)", uint8(f))
	}
}

// ParseMetaField parses a metadata field name (case-insensitive, accepting
// a few synonyms such as "type" and "maxtextlength").
func ParseMetaField(s string) (MetaField, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "datatype", "type":
		return FieldDataType, nil
	case "columnname", "column", "name":
		return FieldColumnName, nil
	case "maxvalue", "max":
		return FieldMaxValue, nil
	case "minvalue", "min":
		return FieldMinValue, nil
	case "maxlength", "maxtextlength", "length":
		return FieldMaxLength, nil
	case "tablename", "table":
		return FieldTableName, nil
	default:
		return FieldDataType, fmt.Errorf("lang: unknown metadata field %q", s)
	}
}

// MetaPredicate is "field binop const": the pm production of Figure 1.
type MetaPredicate struct {
	Field MetaField
	Op    BinOp
	Const string
}

// Eval implements MetaExpr.
func (p MetaPredicate) Eval(st schema.Stats) bool {
	switch p.Field {
	case FieldDataType:
		want, err := value.ParseKind(p.Const)
		if err != nil {
			return false
		}
		match := st.Type == want
		// Int columns satisfy a "decimal" requirement: every int is a valid
		// decimal, which is what a user asserting "numeric and positive"
		// means.
		if !match && want == value.Decimal && st.Type == value.Int {
			match = true
		}
		if p.Op == OpNe {
			return !match
		}
		return match
	case FieldColumnName:
		cmp := strings.EqualFold(st.Ref.Column, p.Const)
		if !cmp && strings.ContainsAny(p.Const, "%*") {
			cmp = wildcardMatch(strings.ToLower(p.Const), strings.ToLower(st.Ref.Column))
		}
		if p.Op == OpNe {
			return !cmp
		}
		return cmp
	case FieldTableName:
		cmp := strings.EqualFold(st.Ref.Table, p.Const)
		if !cmp && strings.ContainsAny(p.Const, "%*") {
			cmp = wildcardMatch(strings.ToLower(p.Const), strings.ToLower(st.Ref.Table))
		}
		if p.Op == OpNe {
			return !cmp
		}
		return cmp
	case FieldMaxValue:
		if st.Max.IsNull() {
			return false
		}
		return p.Op.apply(st.Max, value.Parse(p.Const))
	case FieldMinValue:
		if st.Min.IsNull() {
			return false
		}
		return p.Op.apply(st.Min, value.Parse(p.Const))
	case FieldMaxLength:
		want, ok := value.Parse(p.Const).Float()
		if !ok {
			return false
		}
		return p.Op.applyInt(st.MaxLength, int(want))
	default:
		return false
	}
}

// String implements MetaExpr.
func (p MetaPredicate) String() string {
	return fmt.Sprintf("%s %s '%s'", p.Field, p.Op, strings.ReplaceAll(p.Const, "'", "''"))
}

// MetaAnd is the conjunction of metadata constraints.
type MetaAnd struct {
	Terms []MetaExpr
}

// Eval implements MetaExpr.
func (a MetaAnd) Eval(st schema.Stats) bool {
	for _, t := range a.Terms {
		if !t.Eval(st) {
			return false
		}
	}
	return true
}

// String implements MetaExpr.
func (a MetaAnd) String() string { return joinMeta(a.Terms, " AND ") }

// MetaOr is the disjunction of metadata constraints ("ambiguous" metadata in
// the paper's terminology).
type MetaOr struct {
	Terms []MetaExpr
}

// Eval implements MetaExpr.
func (o MetaOr) Eval(st schema.Stats) bool {
	for _, t := range o.Terms {
		if t.Eval(st) {
			return true
		}
	}
	return false
}

// String implements MetaExpr.
func (o MetaOr) String() string { return joinMeta(o.Terms, " OR ") }

func joinMeta(terms []MetaExpr, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		s := t.String()
		switch t.(type) {
		case MetaAnd, MetaOr:
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

// wildcardMatch matches pattern against s where '%' and '*' match any run
// of characters.
func wildcardMatch(pattern, s string) bool {
	pattern = strings.ReplaceAll(pattern, "*", "%")
	parts := strings.Split(pattern, "%")
	if len(parts) == 1 {
		return pattern == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for i := 1; i < len(parts)-1; i++ {
		idx := strings.Index(s, parts[i])
		if idx < 0 {
			return false
		}
		s = s[idx+len(parts[i]):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}
