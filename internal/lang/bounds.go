package lang

import (
	"math"

	"prism/internal/value"
)

// NumericBounds derives a closed numeric interval cover [lo, hi] of a value
// constraint, the analysis zone-map pruning consumes: whenever ok, every
// value v with a defined, non-NaN numeric view (v.Float()) that satisfies
// Eval lies inside the interval, and Eval rejects NULL. NaN-viewed values
// (e.g. the text "nan") sit outside the contract: value.Compare orders NaN
// below every number, so such a value can satisfy an ordering predicate
// while lying outside every finite interval — consumers must exclude
// columns that may contain them (colexec's zone maps clear `numeric` on
// NaN) before pruning. An executor whose zone map proves a column's
// numeric values all fall outside the interval may then skip the column
// scan entirely.
//
// The cover is intentionally conservative:
//
//   - Only Int/Decimal constants produce bounds. Date/Time constants are
//     excluded because Value.Compare orders non-numeric text against them
//     by kind, not by magnitude, so a numeric interval would not be a
//     cover. Keywords are excluded too (their equality semantics are served
//     better by the keyword index).
//   - A conjunction may take each side of the interval from any of its
//     terms (Eval implies every term, hence every term's cover).
//   - A disjunction is covered only when every branch is; the interval is
//     the convex hull. Branches additionally all reject NULL, preserving
//     the NULL contract.
//   - Negation, orderings on non-numeric constants, and any shape this
//     analysis does not understand yield ok == false — never a wrong
//     interval.
//
// ExactRangeBounds reports bounds that characterise e exactly rather than
// merely cover it: when ok, e.Eval(v) holds iff v.Float() yields f with
// b.Lo <= f <= b.Hi. Only the pure numeric Range shape "[lo, hi]"
// qualifies, and the equivalence holds for EVERY value kind:
//
//   - values with a numeric view (Int, Decimal, Date, Time,
//     numeric-looking Text) compare against Int/Decimal constants by
//     magnitude (compareFloat), so Eval is exactly the interval test —
//     including a NaN view, which both sides reject;
//   - NULL fails Eval and has no numeric view;
//   - non-numeric Text sorts above both numeric kinds in the cross-kind
//     order, so it lands above Hi and below neither — Eval is false, and
//     Float reports !ok.
//
// Ordering shapes (">= c") are NOT exact: non-numeric text sorts above the
// constant and satisfies them while having no numeric view. Executors use
// exact bounds to answer the predicate with two float comparisons instead
// of a closure call per row (exec.ColumnPredicate.BoundsExact).
func ExactRangeBounds(e ValueExpr) (BoundsCover, bool) {
	r, ok := e.(Range)
	if !ok {
		return BoundsCover{}, false
	}
	lo, lok := numericConst(r.Lo)
	hi, hok := numericConst(r.Hi)
	if !lok || !hok {
		return BoundsCover{}, false
	}
	return BoundsCover{Lo: lo, Hi: hi, HasLo: true, HasHi: true}, true
}

func NumericBounds(e ValueExpr) (b BoundsCover, ok bool) {
	switch n := e.(type) {
	case Compare:
		f, numeric := numericConst(n.Const)
		if !numeric {
			return BoundsCover{}, false
		}
		switch n.Op {
		case OpEq:
			return BoundsCover{Lo: f, Hi: f, HasLo: true, HasHi: true}, true
		case OpLt, OpLe:
			// [−∞, C] covers both < C and <= C (covers may be loose).
			return BoundsCover{Hi: f, HasHi: true}, true
		case OpGt, OpGe:
			return BoundsCover{Lo: f, HasLo: true}, true
		default:
			return BoundsCover{}, false
		}
	case Range:
		lo, lok := numericConst(n.Lo)
		hi, hok := numericConst(n.Hi)
		if !lok || !hok {
			return BoundsCover{}, false
		}
		return BoundsCover{Lo: lo, Hi: hi, HasLo: true, HasHi: true}, true
	case And:
		// Eval implies every term, so each side of the interval may come
		// from whichever term bounds it tightest.
		var out BoundsCover
		for _, t := range n.Terms {
			tb, tok := NumericBounds(t)
			if !tok {
				continue
			}
			if tb.HasLo && (!out.HasLo || tb.Lo > out.Lo) {
				out.Lo, out.HasLo = tb.Lo, true
			}
			if tb.HasHi && (!out.HasHi || tb.Hi < out.Hi) {
				out.Hi, out.HasHi = tb.Hi, true
			}
		}
		return out.normalized(), out.HasLo || out.HasHi
	case Or:
		// Convex hull, and only when every branch is covered.
		var out BoundsCover
		for i, t := range n.Terms {
			tb, tok := NumericBounds(t)
			if !tok {
				return BoundsCover{}, false
			}
			if i == 0 {
				out = tb
				continue
			}
			if out.HasLo {
				if !tb.HasLo {
					out.HasLo = false
				} else if tb.Lo < out.Lo {
					out.Lo = tb.Lo
				}
			}
			if out.HasHi {
				if !tb.HasHi {
					out.HasHi = false
				} else if tb.Hi > out.Hi {
					out.Hi = tb.Hi
				}
			}
		}
		return out.normalized(), len(n.Terms) > 0 && (out.HasLo || out.HasHi)
	default:
		return BoundsCover{}, false
	}
}

// normalized zeroes the unset sides so covers compare cleanly.
func (b BoundsCover) normalized() BoundsCover {
	if !b.HasLo {
		b.Lo = 0
	}
	if !b.HasHi {
		b.Hi = 0
	}
	return b
}

// BoundsCover is the numeric interval produced by NumericBounds. It
// mirrors exec.NumericBounds without importing exec (lang sits below the
// execution layer).
type BoundsCover struct {
	Lo, Hi       float64
	HasLo, HasHi bool
}

// numericConst returns the float view of an Int/Decimal constant. NaN
// constants are rejected: interval arithmetic over NaN silently disables
// every comparison, which would make the cover meaningless.
func numericConst(v value.Value) (float64, bool) {
	k := v.Kind()
	if k != value.Int && k != value.Decimal {
		return 0, false
	}
	f, ok := v.Float()
	if !ok || math.IsNaN(f) {
		return 0, false
	}
	return f, true
}
