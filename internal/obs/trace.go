package obs

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one node of a round trace: a named, timed phase with numeric
// and string attributes and child spans. Discovery builds one tree per
// round (round → enumerate/decompose/schedule → validation batches) and
// attaches it to the Report, so "where did the budget go" is answered
// by the report instead of a profiler.
//
// All methods are safe on a nil *Span and become no-ops, which is how
// tracing stays free when not requested: untraced code paths carry a
// nil span and never branch on a flag.
type Span struct {
	Name     string         `json:"name"`
	Start    time.Time      `json:"start"`
	Duration time.Duration  `json:"durationNs"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*Span        `json:"children,omitempty"`
	// Dropped counts children beyond the per-span cap that were not
	// recorded (they are still timed by their creators, just detached).
	Dropped int `json:"dropped,omitempty"`

	mu sync.Mutex
}

// maxSpanChildren bounds the memory of one span's child list; a
// pathological round (tens of thousands of validation batches) drops
// the excess and counts it instead of growing without bound.
const maxSpanChildren = 4096

// NewSpan starts a root span.
func NewSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// Child starts a sub-span under s. Safe for concurrent callers (the
// scheduler's worker pool opens validation spans in parallel). On a nil
// receiver it returns nil, keeping the whole call chain free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	if len(s.Children) < maxSpanChildren {
		s.Children = append(s.Children, c)
	} else {
		s.Dropped++
	}
	s.mu.Unlock()
	return c
}

// End records the span's duration. Idempotent: the first call wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Duration == 0 {
		s.Duration = time.Since(s.Start)
	}
	s.mu.Unlock()
}

// SetAttr attaches one attribute to the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]any)
	}
	s.Attrs[key] = value
	s.mu.Unlock()
}

// Attr returns one attribute value (nil when absent or on a nil span).
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Attrs[key]
}

// Find returns the first span named name in a depth-first walk of the
// tree rooted at s, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.Children...)
	s.mu.Unlock()
	for _, c := range children {
		if got := c.Find(name); got != nil {
			return got
		}
	}
	return nil
}

// spanKey carries the active span through a context.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s. A nil s returns ctx unchanged
// so downstream SpanFromContext stays nil (and therefore free).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// ndjsonSpan is one flattened trace line: parent links replace nesting
// so each line stays small and the file is greppable.
type ndjsonSpan struct {
	ID         int            `json:"id"`
	Parent     int            `json:"parent,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationNs int64          `json:"durationNs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Dropped    int            `json:"dropped,omitempty"`
}

// WriteNDJSON flattens the tree rooted at s into newline-delimited JSON,
// one span per line in depth-first order with parent ids (the root has
// none). This is the -trace FILE format of prism-cli, prism-bench and
// prism-loadtest.
func (s *Span) WriteNDJSON(w io.Writer) error {
	if s == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	next := 1
	var walk func(sp *Span, parent int) error
	walk = func(sp *Span, parent int) error {
		sp.mu.Lock()
		// Attrs is cloned, not aliased: encoding happens after the lock
		// is released, and a concurrent SetAttr on a still-live span
		// would race with json.Encode reading the map.
		var attrs map[string]any
		if len(sp.Attrs) > 0 {
			attrs = make(map[string]any, len(sp.Attrs))
			for k, v := range sp.Attrs {
				attrs[k] = v
			}
		}
		line := ndjsonSpan{
			ID:         next,
			Parent:     parent,
			Name:       sp.Name,
			Start:      sp.Start,
			DurationNs: int64(sp.Duration),
			Attrs:      attrs,
			Dropped:    sp.Dropped,
		}
		children := append([]*Span(nil), sp.Children...)
		sp.mu.Unlock()
		id := next
		next++
		if err := enc.Encode(line); err != nil {
			return err
		}
		for _, c := range children {
			if err := walk(c, id); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(s, 0)
}
