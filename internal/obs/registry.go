// Package obs is prism's zero-dependency observability subsystem: a
// process-wide metrics registry (atomic counters, gauges, and
// fixed-memory histograms in the style of the serve quantile sketch), a
// span tree for tracing discovery rounds, and a Prometheus text
// exposition encoder behind GET /api/v1/metrics.
//
// The registry is built for near-zero hot-path cost: a counter bump is
// one atomic load (the enabled flag) plus one atomic add, with no
// allocation; when the registry is disabled every instrument becomes a
// no-op after the single load. Instruments are registered once (keyed
// by name + label set) and held by the instrumented package, so the
// scrape path — which locks, sorts, and formats — never touches the
// round pipeline.
//
// Scrape-time values that already live elsewhere (the admission
// controller's counters, the scheduler pool gauges) are exposed through
// collectors: functions invoked during WritePrometheus that read the
// same live source /api/v1/stats reads. Registering the source once
// means the two endpoints cannot drift.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Key   string
	Value string
}

// Metric family types, matching the Prometheus exposition format.
const (
	TypeCounter = "counter"
	TypeGauge   = "gauge"
	TypeSummary = "summary"
)

// Registry holds named metric families and scrape-time collectors. The
// zero value is not usable; call NewRegistry. Most code uses Default.
type Registry struct {
	enabled atomic.Bool

	mu         sync.Mutex
	families   map[string]*family
	order      []string // registration order of family names
	collectors []func() []Sample
}

// family is every registered series of one metric name.
type family struct {
	name string
	help string
	typ  string
	// series in registration order; the key is the serialized label set.
	keys   []string
	series map[string]instrument
}

// instrument is anything the registry can scrape.
type instrument interface {
	samples(name string, labels []Label) []Sample
}

// Sample is one exposition line: a metric name, its label set, and a
// value. Collectors return these; the encoder groups them by Name.
type Sample struct {
	Name   string
	Help   string
	Type   string
	Labels []Label
	Value  float64
}

// NewRegistry returns an enabled, empty registry.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family)}
	r.enabled.Store(true)
	return r
}

// Default is the process-wide registry. Library instrumentation
// (discovery round counters, memory accounting) registers here; the
// demo server additionally scrapes it from /api/v1/metrics.
var Default = NewRegistry()

// Enable turns instrument updates on. Registries start enabled.
func (r *Registry) Enable() { r.enabled.Store(true) }

// Disable turns every instrument of this registry into a no-op (one
// atomic load per call). Scraping still works and reports the values
// accumulated while enabled.
func (r *Registry) Disable() { r.enabled.Store(false) }

// Enabled reports whether instrument updates are applied.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// labelKey serializes a label set into a map key. Labels are sorted so
// the same set in a different order names the same series, and each
// component is quoted so delimiter characters inside a key or value
// cannot make two distinct label sets collide on one key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(strconv.Quote(l.Key))
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
		b.WriteByte(',')
	}
	return b.String()
}

// register memoizes one series: the first call for (name, labels)
// creates it via mk, later calls return the existing instrument.
func (r *Registry) register(name, help, typ string, labels []Label, mk func() instrument) instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]instrument)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	key := labelKey(labels)
	if got, ok := f.series[key]; ok {
		return got
	}
	in := mk()
	f.series[key] = in
	f.keys = append(f.keys, key)
	return in
}

// Counter returns the monotonically increasing counter registered under
// name with the given label set, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, TypeCounter, labels, func() instrument {
		return &Counter{enabled: &r.enabled, labels: append([]Label(nil), labels...)}
	}).(*Counter)
}

// Gauge returns the gauge registered under name with the given label
// set, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, TypeGauge, labels, func() instrument {
		return &Gauge{enabled: &r.enabled, labels: append([]Label(nil), labels...)}
	}).(*Gauge)
}

// Histogram returns the fixed-memory histogram registered under name,
// creating it on first use with the given observation window (0 uses
// DefaultWindow). Exported as a Prometheus summary with p50/p90/p99
// quantiles over the window plus lifetime _sum and _count.
func (r *Registry) Histogram(name, help string, window int, labels ...Label) *Histogram {
	return r.register(name, help, TypeSummary, labels, func() instrument {
		if window <= 0 {
			window = DefaultWindow
		}
		return &Histogram{
			enabled: &r.enabled,
			labels:  append([]Label(nil), labels...),
			window:  make([]float64, 0, window),
			cap:     window,
		}
	}).(*Histogram)
}

// RegisterCollector adds a scrape-time sample source. The function runs
// on every WritePrometheus call and must be safe for concurrent use; it
// should read live state (e.g. an admission snapshot) and return one
// Sample per series.
func (r *Registry) RegisterCollector(f func() []Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, f)
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

// Counter is a monotonically increasing int64. The nil Counter is a
// valid no-op, so optional instrumentation needs no nil checks.
type Counter struct {
	enabled *atomic.Bool
	labels  []Label
	v       atomic.Int64
}

// Add increments the counter by n (negative n is ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 || !c.enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) samples(name string, labels []Label) []Sample {
	return []Sample{{Name: name, Labels: labels, Value: float64(c.v.Load())}}
}

// Gauge is a settable int64 with an atomic ratchet for peak tracking.
// The nil Gauge is a valid no-op.
type Gauge struct {
	enabled *atomic.Bool
	labels  []Label
	v       atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil || !g.enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil || !g.enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// SetMax ratchets the gauge up to v if v exceeds the current value —
// the primitive behind the peak-memory gauges.
func (g *Gauge) SetMax(v int64) {
	if g == nil || !g.enabled.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) samples(name string, labels []Label) []Sample {
	return []Sample{{Name: name, Labels: labels, Value: float64(g.v.Load())}}
}

// DefaultWindow is the observation window of a Histogram when the
// registration does not pick one. It matches the serving tier's latency
// sketches: recent-window quantiles in fixed memory.
const DefaultWindow = 1024

// histQuantiles are the quantile series a Histogram exports.
var histQuantiles = []float64{0.5, 0.9, 0.99}

// Histogram estimates quantiles over a sliding window of observations
// in fixed memory — the serve.Sketch design — and keeps lifetime count
// and sum. The nil Histogram is a valid no-op.
type Histogram struct {
	enabled *atomic.Bool
	labels  []Label

	mu     sync.Mutex
	window []float64
	next   int
	cap    int
	count  int64
	sum    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.enabled.Load() || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	if len(h.window) < h.cap {
		h.window = append(h.window, v)
	} else {
		h.window[h.next] = v
		h.next = (h.next + 1) % h.cap
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the lifetime number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) over the current window,
// or NaN with no observations. Nearest-rank on a sorted snapshot.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	h.mu.Lock()
	snap := append([]float64(nil), h.window...)
	h.mu.Unlock()
	return quantileOf(snap, q)
}

func quantileOf(snap []float64, q float64) float64 {
	if len(snap) == 0 {
		return math.NaN()
	}
	sort.Float64s(snap)
	if q <= 0 {
		return snap[0]
	}
	if q >= 1 {
		return snap[len(snap)-1]
	}
	rank := int(math.Ceil(q*float64(len(snap)))) - 1
	if rank < 0 {
		rank = 0
	}
	return snap[rank]
}

func (h *Histogram) samples(name string, labels []Label) []Sample {
	h.mu.Lock()
	snap := append([]float64(nil), h.window...)
	count, sum := h.count, h.sum
	h.mu.Unlock()
	sort.Float64s(snap)
	out := make([]Sample, 0, len(histQuantiles)+2)
	for _, q := range histQuantiles {
		v := math.NaN()
		if len(snap) > 0 {
			rank := int(math.Ceil(q*float64(len(snap)))) - 1
			if rank < 0 {
				rank = 0
			}
			v = snap[rank]
		}
		ql := append(append([]Label(nil), labels...), Label{Key: "quantile", Value: trimFloat(q)})
		out = append(out, Sample{Name: name, Labels: ql, Value: v})
	}
	out = append(out,
		Sample{Name: name + "_sum", Labels: labels, Value: sum},
		Sample{Name: name + "_count", Labels: labels, Value: float64(count)},
	)
	return out
}

// trimFloat formats a quantile label without trailing zeros ("0.5").
func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%g", f), "0"), ".")
}

// ---------------------------------------------------------------------------
// Scrape
// ---------------------------------------------------------------------------

// Gather returns every sample of the registry — static instruments in
// registration order plus collector output — without formatting. The
// encoder and the stats⇄metrics cross-check tests share it.
//
// Family keys and series maps are mutated by register() under r.mu, and
// series registration happens at request time (e.g. the first round of
// a new tenant), so everything read from a family is snapshotted while
// the lock is held; only instrument.samples() — which reads atomics or
// takes the instrument's own lock — runs after release.
func (r *Registry) Gather() []Sample {
	type famSnap struct {
		name, help, typ string
		series          []instrument
	}
	r.mu.Lock()
	fams := make([]famSnap, 0, len(r.order))
	for _, name := range r.order {
		f := r.families[name]
		fs := famSnap{name: f.name, help: f.help, typ: f.typ,
			series: make([]instrument, 0, len(f.keys))}
		for _, key := range f.keys {
			fs.series = append(fs.series, f.series[key])
		}
		fams = append(fams, fs)
	}
	collectors := append([]func() []Sample(nil), r.collectors...)
	r.mu.Unlock()

	var out []Sample
	for _, f := range fams {
		for _, in := range f.series {
			for _, s := range in.samples(f.name, labelsOf(in)) {
				s.Help, s.Type = f.help, f.typ
				out = append(out, s)
			}
		}
	}
	for _, c := range collectors {
		out = append(out, c()...)
	}
	return out
}

func labelsOf(in instrument) []Label {
	switch v := in.(type) {
	case *Counter:
		return v.labels
	case *Gauge:
		return v.labels
	case *Histogram:
		return v.labels
	}
	return nil
}
