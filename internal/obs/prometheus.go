package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// GET /api/v1/metrics.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus encodes every registered metric and collector sample
// in the Prometheus text exposition format: families sorted by name,
// each preceded by its # HELP and # TYPE lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Gather()

	// Group samples into families. Summary child series (_sum/_count)
	// belong to their parent family and must stay adjacent to it.
	type fam struct {
		name    string
		help    string
		typ     string
		samples []Sample
	}
	byName := make(map[string]*fam)
	var order []string
	// The suffix check must run even for samples already stamped with the
	// summary type: Gather stamps the family type onto every sample of a
	// histogram, children included, so X_sum/X_count arrive typed as
	// summaries and would otherwise become their own (invalid) families.
	famName := func(s Sample) string {
		for _, suffix := range []string{"_sum", "_count"} {
			base := strings.TrimSuffix(s.Name, suffix)
			if base != s.Name {
				if f, ok := byName[base]; ok && f.typ == TypeSummary {
					return base
				}
			}
		}
		return s.Name
	}
	for _, s := range samples {
		name := famName(s)
		f := byName[name]
		if f == nil {
			f = &fam{name: name, help: s.Help, typ: s.Type}
			if f.typ == "" {
				f.typ = TypeGauge
			}
			byName[name] = f
			order = append(order, name)
		}
		f.samples = append(f.samples, s)
	}
	sort.Strings(order)

	var b strings.Builder
	for _, name := range order {
		f := byName[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			b.WriteString(s.Name)
			writeLabels(&b, s.Labels)
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
