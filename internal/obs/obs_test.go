package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("prism_test_total", "a test counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters are monotonic; negative deltas are dropped
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("prism_test_gauge", "a test gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Fatalf("SetMax lowered the gauge to %d", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Fatalf("SetMax = %d, want 11", got)
	}
}

func TestRegistrationIsMemoized(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("prism_memo_total", "memoized")
	b := r.Counter("prism_memo_total", "memoized")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	t1 := r.Counter("prism_memo_total", "memoized", Label{Key: "tenant", Value: "a"})
	t2 := r.Counter("prism_memo_total", "memoized", Label{Key: "tenant", Value: "b"})
	if t1 == t2 || t1 == a {
		t.Fatal("distinct label sets must be distinct series")
	}
	// Label order must not mint a new series.
	x := r.Gauge("prism_memo_gauge", "", Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	y := r.Gauge("prism_memo_gauge", "", Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	if x != y {
		t.Fatal("label order minted a new series")
	}
}

// TestLabelKeyInjective pins that the series-key encoding cannot merge
// distinct label sets: delimiter characters inside a key or value (the
// '=' and ',' the encoding itself uses) must not collide with the
// boundaries between labels.
func TestLabelKeyInjective(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("prism_inj_total", "", Label{Key: "a", Value: "b,c=d"})
	b := r.Counter("prism_inj_total", "", Label{Key: "a", Value: "b"}, Label{Key: "c", Value: "d"})
	if a == b {
		t.Fatal("distinct label sets collided on one series key")
	}
	x := r.Counter("prism_inj_total", "", Label{Key: `a"`, Value: "b"})
	y := r.Counter("prism_inj_total", "", Label{Key: "a", Value: `"b`})
	if x == y {
		t.Fatal("quote characters inside labels collided on one series key")
	}
}

// TestGatherConcurrentRegister pins the scrape/register race: a scrape
// must not read family keys or series maps concurrently with a
// registration (per-tenant series are minted at request time, so a
// /api/v1/metrics scrape can coincide with the first round of a new
// tenant). Several goroutines scrape in a loop while the main goroutine
// registers a stream of new series; before Gather snapshotted families
// under the lock this was a -race report and, on the series map, a
// fatal concurrent map read/write.
func TestGatherConcurrentRegister(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = r.Gather()
			}
		}()
	}
	for i := 0; i < 20000; i++ {
		tenant := Label{Key: "tenant", Value: "t" + trimFloat(float64(i))}
		r.Counter("prism_race_total", "", tenant).Inc()
		r.Gauge("prism_race_gauge", "", tenant).Set(int64(i))
		if i%100 == 0 {
			r.Histogram("prism_race_ms", "", 8, tenant).Observe(float64(i))
		}
	}
	close(stop)
	wg.Wait()
}

func TestDisabledIsNoOp(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("prism_disabled_total", "")
	g := r.Gauge("prism_disabled_gauge", "")
	h := r.Histogram("prism_disabled_ms", "", 8)
	r.Disable()
	c.Inc()
	g.Set(42)
	g.SetMax(42)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("disabled registry still recorded updates")
	}
	r.Enable()
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled counter did not record")
	}
}

// TestHotPathAllocs is the instrumentation cost guard: counter and
// gauge updates allocate nothing whether the registry is enabled or
// disabled, and the nil instruments (untraced spans, unregistered
// counters) are equally free. This is what keeps the warm Exists probe
// at 0 allocs/op with observability threaded through the stack.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("prism_alloc_total", "")
	g := r.Gauge("prism_alloc_gauge", "")
	check := func(name string, f func()) {
		t.Helper()
		if n := testing.AllocsPerRun(200, f); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, n)
		}
	}
	check("counter enabled", func() { c.Add(1) })
	check("gauge enabled", func() { g.SetMax(5) })
	r.Disable()
	check("counter disabled", func() { c.Add(1) })
	check("gauge disabled", func() { g.Set(1) })
	var nilC *Counter
	var nilG *Gauge
	var nilS *Span
	check("nil counter", func() { nilC.Add(1) })
	check("nil gauge", func() { nilG.Set(1) })
	check("nil span", func() {
		sp := nilS.Child("x")
		sp.SetAttr("k", 1)
		sp.End()
	})
	check("span from bare context", func() {
		_ = SpanFromContext(context.Background())
	})
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("prism_hist_ms", "", 100)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram should report NaN")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	// The window slides: after 100 more observations of 1000 the window
	// holds only large values, but the lifetime count keeps growing.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	if got := h.Quantile(0.5); got != 1000 {
		t.Fatalf("post-slide p50 = %v, want 1000", got)
	}
	if got := h.Count(); got != 200 {
		t.Fatalf("lifetime count = %d, want 200", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("prism_rounds_total", "Discovery rounds completed.").Add(3)
	r.Gauge("prism_queue_depth", "Queued requests.", Label{Key: "class", Value: "batch"}).Set(2)
	h := r.Histogram("prism_round_duration_ms", "Round wall time.", 16)
	h.Observe(10)
	h.Observe(20)
	r.RegisterCollector(func() []Sample {
		return []Sample{
			{
				Name: "prism_admission_in_flight", Help: "In-flight rounds.", Type: TypeGauge,
				Labels: []Label{{Key: "tenant", Value: `we"ird\`}}, Value: 1,
			},
			// A collector-produced summary with a _count child, the shape
			// the serve latency collector emits.
			{
				Name: "prism_collected_ms", Help: "Collected latency.", Type: TypeSummary,
				Labels: []Label{{Key: "quantile", Value: "0.5"}}, Value: 4,
			},
			{Name: "prism_collected_ms_count", Type: TypeSummary, Value: 9},
		}
	})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE prism_rounds_total counter",
		"prism_rounds_total 3",
		"# TYPE prism_queue_depth gauge",
		`prism_queue_depth{class="batch"} 2`,
		"# TYPE prism_round_duration_ms summary",
		`prism_round_duration_ms{quantile="0.5"} 10`,
		`prism_round_duration_ms{quantile="0.99"} 20`,
		"prism_round_duration_ms_sum 30",
		"prism_round_duration_ms_count 2",
		`prism_admission_in_flight{tenant="we\"ird\\"} 1`,
		`prism_collected_ms{quantile="0.5"} 4`,
		"prism_collected_ms_count 9",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// _sum/_count are children of their summary family, never families of
	// their own: a # TYPE line for them is invalid summary metadata that
	// promtool lint rejects.
	for _, banned := range []string{
		"# TYPE prism_round_duration_ms_sum",
		"# TYPE prism_round_duration_ms_count",
		"# TYPE prism_collected_ms_count",
	} {
		if strings.Contains(text, banned) {
			t.Errorf("exposition declares a child series as its own family: %q in:\n%s", banned, text)
		}
	}
	if err := checkPrometheusText(text); err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
}

// checkPrometheusText is a minimal exposition-format validator: every
// non-comment line must be `name{labels} value` with a parsable value,
// and every sample must be preceded by a TYPE line for its family.
func checkPrometheusText(text string) error {
	typed := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return errLine(line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suf := range []string{"_sum", "_count"} {
			if t := strings.TrimSuffix(name, suf); t != name && typed[t] == TypeSummary {
				base = t
			}
		}
		if _, ok := typed[base]; !ok {
			return errLine("untyped sample: " + line)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if val != "NaN" && val != "+Inf" && val != "-Inf" {
			if _, err := jsonNumber(val); err != nil {
				return errLine(line)
			}
		}
	}
	return sc.Err()
}

type errLine string

func (e errLine) Error() string { return "bad exposition line: " + string(e) }

func jsonNumber(s string) (float64, error) {
	var f float64
	err := json.Unmarshal([]byte(s), &f)
	return f, err
}

func TestSpanTreeConcurrent(t *testing.T) {
	root := NewSpan("round")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.Child("validate")
			sp.SetAttr("batch", i)
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if len(root.Children) != 32 {
		t.Fatalf("children = %d, want 32", len(root.Children))
	}
	if root.Duration <= 0 {
		t.Fatal("End did not record a duration")
	}
	d := root.Duration
	root.End()
	if root.Duration != d {
		t.Fatal("End is not idempotent")
	}
}

func TestSpanChildCap(t *testing.T) {
	root := NewSpan("round")
	for i := 0; i < maxSpanChildren+10; i++ {
		root.Child("v").End()
	}
	if len(root.Children) != maxSpanChildren {
		t.Fatalf("children = %d, want cap %d", len(root.Children), maxSpanChildren)
	}
	if root.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", root.Dropped)
	}
}

func TestSpanContext(t *testing.T) {
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatal("bare context should carry no span")
	}
	if got := ContextWithSpan(ctx, nil); got != ctx {
		t.Fatal("nil span should not wrap the context")
	}
	s := NewSpan("round")
	if got := SpanFromContext(ContextWithSpan(ctx, s)); got != s {
		t.Fatal("span did not round-trip through the context")
	}
}

func TestWriteNDJSON(t *testing.T) {
	root := NewSpan("round")
	enum := root.Child("enumerate")
	enum.SetAttr("candidates", 12)
	enum.End()
	sched := root.Child("schedule")
	sched.Child("validate").End()
	sched.End()
	root.End()

	var buf bytes.Buffer
	if err := root.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), buf.String())
	}
	type line struct {
		ID         int            `json:"id"`
		Parent     int            `json:"parent"`
		Name       string         `json:"name"`
		DurationNs int64          `json:"durationNs"`
		Attrs      map[string]any `json:"attrs"`
	}
	var parsed []line
	for _, l := range lines {
		var v line
		if err := json.Unmarshal([]byte(l), &v); err != nil {
			t.Fatalf("line %q: %v", l, err)
		}
		parsed = append(parsed, v)
	}
	if parsed[0].Name != "round" || parsed[0].Parent != 0 || parsed[0].ID != 1 {
		t.Fatalf("bad root line: %+v", parsed[0])
	}
	if parsed[1].Name != "enumerate" || parsed[1].Parent != 1 {
		t.Fatalf("bad enumerate line: %+v", parsed[1])
	}
	if parsed[1].Attrs["candidates"] != float64(12) {
		t.Fatalf("enumerate attrs = %v", parsed[1].Attrs)
	}
	if parsed[3].Name != "validate" || parsed[3].Parent != parsed[2].ID {
		t.Fatalf("bad validate line: %+v", parsed[3])
	}
	// A nil span writes nothing.
	var nilSpan *Span
	var empty bytes.Buffer
	if err := nilSpan.WriteNDJSON(&empty); err != nil || empty.Len() != 0 {
		t.Fatalf("nil span wrote %q (err %v)", empty.String(), err)
	}
}

// TestWriteNDJSONConcurrentSetAttr pins that dumping a trace does not
// race with attribute writes on still-live spans (workers finishing
// validate spans while the CLI writes the -trace file): the dump must
// clone Attrs under the span lock rather than alias the map into the
// encoder.
func TestWriteNDJSONConcurrentSetAttr(t *testing.T) {
	root := NewSpan("round")
	live := root.Child("validate")
	live.SetAttr("batch", 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := root.WriteNDJSON(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for i := 0; i < 50000; i++ {
		live.SetAttr("rows", i)
		live.SetAttr("k"+trimFloat(float64(i%17)), i)
	}
	close(stop)
	wg.Wait()
}

func TestSpanFind(t *testing.T) {
	root := NewSpan("round")
	root.Child("enumerate").End()
	s := root.Child("schedule")
	v := s.Child("validate")
	v.End()
	s.End()
	if got := root.Find("validate"); got != v {
		t.Fatal("Find missed a nested span")
	}
	if got := root.Find("nope"); got != nil {
		t.Fatal("Find invented a span")
	}
}

// TestNoGoroutineLeak pins the registry's shutdown story: the registry
// and encoder own no goroutines, so heavy concurrent use followed by
// disable leaves the goroutine count where it started.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("prism_leak_total", "")
			h := r.Histogram("prism_leak_ms", "", 32)
			for j := 0; j < 100; j++ {
				c.Inc()
				h.Observe(float64(j))
				var buf bytes.Buffer
				_ = r.WritePrometheus(&buf)
			}
		}(i)
	}
	wg.Wait()
	r.Disable()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: %d -> %d", before, after)
	}
}
