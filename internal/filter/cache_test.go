package filter

import (
	"fmt"
	"sync"
	"testing"

	"prism/internal/constraint"
)

func TestOutcomeCacheBasics(t *testing.T) {
	c := NewOutcomeCache(0)
	if c.Stats().Capacity != DefaultCacheCapacity {
		t.Errorf("default capacity = %d, want %d", c.Stats().Capacity, DefaultCacheCapacity)
	}
	if _, ok := c.Lookup("k1"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Store("k1", true)
	c.Store("k2", false)
	if passed, ok := c.Lookup("k1"); !ok || !passed {
		t.Errorf("k1 = (%v, %v), want (true, true)", passed, ok)
	}
	if passed, ok := c.Lookup("k2"); !ok || passed {
		t.Errorf("k2 = (%v, %v), want (false, true)", passed, ok)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Stores != 2 || st.Size != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOutcomeCacheLRUEviction(t *testing.T) {
	c := NewOutcomeCache(3)
	for i := 0; i < 3; i++ {
		c.Store(fmt.Sprintf("k%d", i), true)
	}
	// Touch k0 so k1 becomes the least recently used entry.
	if _, ok := c.Lookup("k0"); !ok {
		t.Fatal("k0 should be cached")
	}
	c.Store("k3", false)
	if _, ok := c.Lookup("k1"); ok {
		t.Error("k1 should have been evicted as least recently used")
	}
	for _, key := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Lookup(key); !ok {
			t.Errorf("%s should have survived eviction", key)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 3 {
		t.Errorf("stats = %+v", st)
	}
	// Re-storing an existing key refreshes recency without growing the cache.
	c.Store("k0", true)
	if c.Len() != 3 {
		t.Errorf("Len = %d after duplicate store, want 3", c.Len())
	}
}

func TestOutcomeCacheConcurrency(t *testing.T) {
	c := NewOutcomeCache(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%200)
				c.Store(key, i%2 == 0)
				c.Lookup(key)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Errorf("cache exceeded capacity: %d", c.Len())
	}
}

func TestValidationKeyIdentity(t *testing.T) {
	fx := newFixture(t)
	set := Decompose(fx.candidates)
	if set.NumFilters() < 2 {
		t.Fatal("fixture too small")
	}

	// Stable across calls.
	for _, f := range set.Filters {
		if ValidationKey(f, fx.spec, 0) != ValidationKey(f, fx.spec, 0) {
			t.Fatalf("key of %s is not deterministic", f)
		}
	}

	// Distinct filters keyed under one spec must not collide (their plans or
	// covered constraints differ).
	seen := make(map[string]string)
	for _, f := range set.Filters {
		key := ValidationKey(f, fx.spec, 0)
		if prev, dup := seen[key]; dup {
			t.Errorf("filters %s and %s share key %s", prev, f, key)
		}
		seen[key] = f.String()
	}

	// The dataset version is part of the key.
	f := set.Filters[0]
	if ValidationKey(f, fx.spec, 0) == ValidationKey(f, fx.spec, 1) {
		t.Error("bumping the dataset version should change the key")
	}
}

func TestValidationKeySampleOrderInvariance(t *testing.T) {
	fx := newFixture(t)
	set := Decompose(fx.candidates)

	twoRows, err := constraint.ParseGrid(3,
		[][]string{
			{"California || Nevada", "Lake Tahoe", ""},
			{"Oregon", "Crater Lake", ""},
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	swapped, err := constraint.ParseGrid(3,
		[][]string{
			{"Oregon", "Crater Lake", ""},
			{"California || Nevada", "Lake Tahoe", ""},
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range set.Filters {
		if ValidationKey(f, twoRows, 0) != ValidationKey(f, swapped, 0) {
			t.Fatalf("sample row order changed the key of %s", f)
		}
	}
}

func TestValidationKeyUnrelatedCellChange(t *testing.T) {
	fx := newFixture(t)
	set := Decompose(fx.candidates)

	// Refine the Area cell (target column 3): filters not covering column 3
	// keep their keys — the reuse the session cache exploits — while filters
	// covering it change.
	refined, err := constraint.ParseGrid(3,
		[][]string{{"California || Nevada", "Lake Tahoe", "[400, 600]"}},
		[]string{"", "", "DataType=='decimal' AND MinValue>='0'"},
	)
	if err != nil {
		t.Fatal(err)
	}
	unchanged, changed := 0, 0
	for _, f := range set.Filters {
		coversArea := false
		for _, tc := range f.TargetCols {
			if tc == 2 {
				coversArea = true
			}
		}
		same := ValidationKey(f, fx.spec, 0) == ValidationKey(f, refined, 0)
		if coversArea {
			if same {
				t.Errorf("filter %s covers the refined column but kept its key", f)
			}
			changed++
		} else {
			if !same {
				t.Errorf("filter %s does not cover the refined column but changed key", f)
			}
			unchanged++
		}
	}
	if unchanged == 0 || changed == 0 {
		t.Fatalf("fixture should exercise both sides (unchanged=%d changed=%d)", unchanged, changed)
	}
}

func TestSessionRecordCached(t *testing.T) {
	fx := newFixture(t)
	set := Decompose(fx.candidates)
	sess := NewSession(set)

	// Fail the filter with the widest reach from cache: candidates prune and
	// implications propagate exactly as for an executed validation, but
	// Executed stays zero.
	widest, reach := 0, 0
	for i := range set.Filters {
		if r := sess.PruningReach(i); r > reach {
			widest, reach = i, r
		}
	}
	sess.RecordCached(widest, false)
	if sess.Executed != 0 {
		t.Errorf("Executed = %d, want 0", sess.Executed)
	}
	if sess.Cached != 1 {
		t.Errorf("Cached = %d, want 1", sess.Cached)
	}
	if got := len(sess.Pruned()); got != reach {
		t.Errorf("pruned %d candidates, want %d", got, reach)
	}
}
