package filter

import (
	"context"
	"errors"
	"testing"
)

func TestValidateContextCancellation(t *testing.T) {
	fx := newFixture(t)
	set := Decompose(fx.candidates)
	v := &Validator{DB: fx.db, Spec: fx.spec}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, f := range set.Filters[:1] {
		res, err := v.ValidateContext(ctx, f)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if res.Passed {
			t.Error("cancelled validation must not report a pass")
		}
	}

	// A live context validates normally and agrees with Validate.
	for _, f := range set.Filters {
		got, err := v.ValidateContext(context.Background(), f)
		if err != nil {
			t.Fatal(err)
		}
		want, err := v.Validate(f)
		if err != nil {
			t.Fatal(err)
		}
		if got.Passed != want.Passed {
			t.Errorf("%s: ValidateContext=%v Validate=%v", f, got.Passed, want.Passed)
		}
	}
}
