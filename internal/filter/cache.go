package filter

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"prism/internal/constraint"
)

// ValidationKey is the cache identity of one filter validation: the triple
// (plan fingerprint, filter constraint fingerprint, dataset version) that
// interactive sessions key their filter-outcome caches on.
//
// A validation outcome is a ground truth of the database: "does the
// filter's Project-Join result contain, for every sample constraint, a
// tuple matching the sample's cells on the covered target columns?" That
// question is fully determined by
//
//   - the filter's plan *as a result set* (exec.Plan.Fingerprint — table
//     order, join orientation and case are normalised away, because
//     existence does not depend on row order),
//   - the constraints actually applied: per sample, the multiset of
//     (source column, value-constraint) pairs on the covered target
//     columns. A sample whose covered cells are all unconstrained still
//     requires the sub-join to be non-empty, which the sentinel "∃"
//     signature captures; a specification with no samples at all behaves
//     identically. Samples are conjunctive and order-independent, so their
//     signatures are sorted and deduplicated — refining an *unrelated*
//     cell, reordering sample rows, or renumbering target columns all
//     leave the key (and therefore the cached ground truth) intact,
//   - the dataset version (mem.Database.Version), so a data mutation makes
//     older entries unreachable rather than stale.
//
// Two validations with equal keys have equal outcomes on every conforming
// executor, which is why a session cache can serve hits across rounds,
// across sample reorderings, and even across execution backends.
func ValidationKey(f *Filter, spec *constraint.Spec, datasetVersion uint64) string {
	sigs := sampleSignatures(f, spec)
	var b strings.Builder
	b.WriteString("v")
	b.WriteString(strconv.FormatUint(datasetVersion, 10))
	b.WriteString("|")
	b.WriteString(f.PlanFingerprint())
	b.WriteString("|")
	b.WriteString(strings.Join(sigs, ";"))
	return b.String()
}

// sampleSignatures renders, per sample constraint, the conjunction the
// validator actually checks against the filter: "source=constraint" pairs
// for the covered, constrained cells, or the non-emptiness sentinel "∃".
// Signatures are sorted and deduplicated — validation is a conjunction over
// samples, so order and multiplicity cannot change the outcome. Every part
// is strconv.Quote-framed before joining: constraint cells may contain the
// joiner characters themselves, and the quoting keeps part boundaries
// unambiguous so distinct constraint sets can never collide into one key.
func sampleSignatures(f *Filter, spec *constraint.Spec) []string {
	samples := spec.Samples
	sigs := make([]string, 0, len(samples)+1)
	add := func(sig string) {
		sigs = append(sigs, sig)
	}
	exists := strconv.Quote("∃")
	if len(samples) == 0 {
		add(exists)
	}
	for _, sample := range samples {
		var parts []string
		for i, tc := range f.TargetCols {
			if tc >= len(sample.Cells) || sample.Cells[tc] == nil {
				continue
			}
			parts = append(parts, strconv.Quote(strings.ToLower(f.Sources[i].String())+"="+sample.Cells[tc].String()))
		}
		if len(parts) == 0 {
			add(exists)
			continue
		}
		sort.Strings(parts)
		add(strings.Join(parts, "&"))
	}
	sort.Strings(sigs)
	out := sigs[:0]
	var last string
	for i, s := range sigs {
		if i > 0 && s == last {
			continue
		}
		last = s
		out = append(out, s)
	}
	return out
}

// CacheStats is a point-in-time snapshot of an OutcomeCache's lifetime
// activity.
type CacheStats struct {
	// Hits and Misses count Lookup calls by result.
	Hits   int
	Misses int
	// Stores counts Store calls; Evictions counts entries dropped by the
	// LRU policy to stay within capacity.
	Stores    int
	Evictions int
	// Size and Capacity describe the current occupancy.
	Size     int
	Capacity int
}

// DefaultCacheCapacity bounds a session's filter-outcome cache when the
// caller does not choose a capacity. Entries are a short key string plus a
// boolean, so even the default upper bound costs at most a few MB.
const DefaultCacheCapacity = 1 << 16

// OutcomeCache is a concurrency-safe LRU cache of filter-validation
// outcomes, keyed by ValidationKey. One cache belongs to one interactive
// session: every round of the session consults it before executing a
// validation and writes back what it executed, so a refined round only pays
// for the filters its delta actually changed.
//
// Outcomes are ground truths of (plan, constraints, dataset version), never
// of the executor or the scheduling policy — a session may switch backends
// or policies between rounds and keep hitting.
type OutcomeCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	stats    CacheStats
}

// cacheEntry is one LRU element.
type cacheEntry struct {
	key    string
	passed bool
}

// NewOutcomeCache creates a cache bounded to capacity entries (<= 0 selects
// DefaultCacheCapacity).
func NewOutcomeCache(capacity int) *OutcomeCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &OutcomeCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// Lookup returns the cached outcome for key, marking the entry as recently
// used. ok is false on a miss.
func (c *OutcomeCache) Lookup(key string) (passed, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, hit := c.entries[key]
	if !hit {
		c.stats.Misses++
		return false, false
	}
	c.stats.Hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).passed, true
}

// Store records the outcome for key, evicting the least recently used
// entries beyond capacity. Storing an existing key refreshes its recency
// (the outcome is a ground truth, so it cannot change for a fixed key).
func (c *OutcomeCache) Store(key string, passed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Stores++
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).passed = passed
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, passed: passed})
	for c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Len returns the number of cached outcomes.
func (c *OutcomeCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the cache's lifetime counters.
func (c *OutcomeCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = c.lru.Len()
	s.Capacity = c.capacity
	return s
}
