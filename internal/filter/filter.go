// Package filter implements the filter-based validation of candidate schema
// mapping queries (§2.3 step #2).
//
// A filter is a sub-join-tree of a candidate query together with the target
// columns whose source columns fall inside the subtree — a shorter
// Project-Join query. Validating a filter asks whether, for every sample
// constraint, the filter's result contains a tuple matching the sample's
// cells restricted to the covered target columns. Because any tuple of the
// full candidate projects onto a tuple of each of its filters:
//
//   - if a filter fails, every filter containing it and every candidate it
//     was derived from fail too (upward failure propagation, the pruning
//     the paper exploits);
//   - if a filter passes, every filter contained in it passes too
//     (downward success propagation).
//
// Filters are shared across candidates: one cheap validation can prune many
// expensive candidates, which is why the order of validation (the concern
// of package sched) matters.
package filter

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"

	"prism/internal/constraint"
	"prism/internal/exec"
	"prism/internal/graphx"
	"prism/internal/lang"
	"prism/internal/rowset"
	"prism/internal/schema"
	"prism/internal/value"
)

// Outcome is the validation state of a filter.
type Outcome uint8

const (
	// Unknown means the filter has not been validated or implied yet.
	Unknown Outcome = iota
	// Passed means the filter is satisfied (validated directly or implied
	// by a passing super-filter).
	Passed
	// Failed means the filter is violated (validated directly or implied by
	// a failing sub-filter).
	Failed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Unknown:
		return "unknown"
	case Passed:
		return "passed"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Filter is one sub-join-tree with its covered target columns.
type Filter struct {
	// Key is the canonical identity of the filter; filters with equal keys
	// are shared across candidates.
	Key string
	// Tree is the sub-join-tree (tables plus foreign-key edges).
	Tree graphx.Tree
	// TargetCols lists the covered target-column indexes, ascending.
	TargetCols []int
	// Sources lists, parallel to TargetCols, the source column each covered
	// target column projects from.
	Sources []schema.ColumnRef

	planOnce sync.Once
	plan     exec.Plan
	fpOnce   sync.Once
	fp       string
}

// IsTopOf reports whether the filter covers the full candidate (same tree
// size and all target columns).
func (f *Filter) IsTopOf(c graphx.Candidate) bool {
	return f.Tree.Size() == c.Tree.Size() && len(f.TargetCols) == len(c.Projection)
}

// Plan returns the executable Project-Join plan of the filter. The plan is
// built once and memoised — a filter is validated once per sample per
// round, and the hot validation path must not re-allocate the slices every
// probe. The returned plan's slices are shared; callers (executors) treat
// plans as read-only.
func (f *Filter) Plan() exec.Plan {
	f.planOnce.Do(func() {
		joins := make([]exec.JoinEdge, len(f.Tree.Edges))
		for i, e := range f.Tree.Edges {
			joins[i] = exec.JoinEdge{Left: e.From, Right: e.To}
		}
		f.plan = exec.Plan{
			Tables:  f.Tree.Tables,
			Joins:   joins,
			Project: f.Sources,
		}
	})
	return f.plan
}

// planFingerprintComputations counts how many times a Filter actually
// canonicalised and hashed its plan (as opposed to serving the memo). It
// exists for the test pinning that batch grouping and cache keying cost one
// fingerprint computation per filter, not one per probe.
var planFingerprintComputations atomic.Int64

// PlanFingerprintComputations returns the process-wide count of plan
// fingerprints computed (not served from a Filter's memo).
func PlanFingerprintComputations() int64 { return planFingerprintComputations.Load() }

// PlanFingerprint returns the fingerprint of the filter's plan, memoised
// next to the plan itself. It is the batch grouping key: filters sharing it
// have identical canonical plans, so one shared scan/join pipeline can
// answer all their validations. The scheduler consults it every round and
// the outcome cache keys on it, so it must not re-canonicalise and re-hash
// the plan per probe.
func (f *Filter) PlanFingerprint() string {
	f.fpOnce.Do(func() {
		f.fp = f.Plan().Fingerprint()
		planFingerprintComputations.Add(1)
	})
	return f.fp
}

// JoinPathLength returns the number of join edges; the Filter baseline's
// failure-probability heuristic is proportional to it.
func (f *Filter) JoinPathLength() int { return len(f.Tree.Edges) }

// String renders the filter compactly.
func (f *Filter) String() string {
	cols := make([]string, len(f.TargetCols))
	for i, tc := range f.TargetCols {
		cols[i] = fmt.Sprintf("c%d=%s", tc+1, f.Sources[i])
	}
	return fmt.Sprintf("filter[%s | %s]", f.Tree, strings.Join(cols, ", "))
}

func filterKey(tree graphx.Tree, targetCols []int, sources []schema.ColumnRef) string {
	parts := make([]string, 0, len(targetCols)+1)
	parts = append(parts, tree.Canonical())
	for i, tc := range targetCols {
		parts = append(parts, fmt.Sprintf("%d:%s", tc, strings.ToLower(sources[i].String())))
	}
	return strings.Join(parts, "#")
}

// Set is the filter decomposition of a batch of candidate queries, with the
// candidate associations and the sub/super dependency relation.
type Set struct {
	// Filters holds every distinct filter.
	Filters []*Filter
	// Candidates are the decomposed candidates, in the order given.
	Candidates []graphx.Candidate
	// CandidateFilters lists, per candidate, the indexes of its filters.
	CandidateFilters [][]int
	// Top lists, per candidate, the index of its top (complete) filter.
	Top []int
	// parents[i] lists filters that contain filter i (super-filters).
	parents [][]int
	// children[i] lists filters contained in filter i (sub-filters).
	children [][]int
	// candidatesOf[i] lists candidates that include filter i.
	candidatesOf [][]int
}

// NumFilters returns the number of distinct filters.
func (s *Set) NumFilters() int { return len(s.Filters) }

// NumCandidates returns the number of candidates.
func (s *Set) NumCandidates() int { return len(s.Candidates) }

// Parents returns the indexes of super-filters of filter i.
func (s *Set) Parents(i int) []int { return s.parents[i] }

// Children returns the indexes of sub-filters of filter i.
func (s *Set) Children(i int) []int { return s.children[i] }

// CandidatesOf returns the candidates containing filter i.
func (s *Set) CandidatesOf(i int) []int { return s.candidatesOf[i] }

// Decompose builds the filter set of the candidates: every connected
// subtree of each candidate's join tree that hosts at least one projected
// column becomes a filter, deduplicated across candidates.
func Decompose(candidates []graphx.Candidate) *Set {
	s, _ := DecomposeContext(context.Background(), candidates)
	return s
}

// DecomposeContext is Decompose under a context. The dependency relation is
// quadratic in the number of filters — tens of seconds on wide candidate
// sets — so cancellation is checked throughout and aborts with ctx.Err().
func DecomposeContext(ctx context.Context, candidates []graphx.Candidate) (*Set, error) {
	s := &Set{
		Candidates:       candidates,
		CandidateFilters: make([][]int, len(candidates)),
		Top:              make([]int, len(candidates)),
	}
	index := make(map[string]int)

	// candFilterSet is a dense filter-index bitset reused across
	// candidates; iterating it recovers each candidate's filter list in
	// ascending order without a per-candidate map + sort.
	candFilterSet := rowset.New(0)
	for ci, cand := range candidates {
		if ci%64 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		subtrees := enumerateSubtrees(cand.Tree)
		// Size the bitset for the worst case: every subtree mints a new
		// filter.
		candFilterSet.Reset(len(s.Filters) + len(subtrees))
		for _, sub := range subtrees {
			var targetCols []int
			var sources []schema.ColumnRef
			for tc, src := range cand.Projection {
				if sub.Contains(src.Table) {
					targetCols = append(targetCols, tc)
					sources = append(sources, src)
				}
			}
			if len(targetCols) == 0 {
				continue
			}
			key := filterKey(sub, targetCols, sources)
			fi, ok := index[key]
			if !ok {
				fi = len(s.Filters)
				index[key] = fi
				s.Filters = append(s.Filters, &Filter{
					Key:        key,
					Tree:       sub,
					TargetCols: targetCols,
					Sources:    sources,
				})
			}
			candFilterSet.Add(int32(fi))
			if sub.Size() == cand.Tree.Size() && len(targetCols) == len(cand.Projection) {
				s.Top[ci] = fi
			}
		}
		filters := make([]int, 0, candFilterSet.Popcount())
		candFilterSet.ForEach(func(fi int32) bool {
			filters = append(filters, int(fi))
			return true
		})
		s.CandidateFilters[ci] = filters
	}

	// Candidate membership per filter.
	s.candidatesOf = make([][]int, len(s.Filters))
	for ci, filters := range s.CandidateFilters {
		for _, fi := range filters {
			s.candidatesOf[fi] = append(s.candidatesOf[fi], ci)
		}
	}

	// Dependency relation: i ≺ j (i is a sub-filter of j) iff i's tables,
	// edges and covered column mapping are all subsets of j's. The relation
	// is quadratic in the number of filters, so the per-filter shape data
	// (sorted edge keys, covered-column mapping) is precomputed once here
	// instead of per pair inside isSubFilter.
	shapes := make([]filterShape, len(s.Filters))
	for i, f := range s.Filters {
		shapes[i] = newFilterShape(f)
	}
	s.parents = make([][]int, len(s.Filters))
	s.children = make([][]int, len(s.Filters))
	for i := range s.Filters {
		if i%16 == 0 && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		for j := range s.Filters {
			if i == j {
				continue
			}
			if shapes[i].subsetOf(&shapes[j], s.Filters[i], s.Filters[j]) {
				s.parents[i] = append(s.parents[i], j)
				s.children[j] = append(s.children[j], i)
			}
		}
	}
	return s, nil
}

// isSubFilter reports whether a is contained in b. It is the one-shot form
// of filterShape.subsetOf; Decompose precomputes shapes instead of calling
// this in its quadratic loop.
func isSubFilter(a, b *Filter) bool {
	sa, sb := newFilterShape(a), newFilterShape(b)
	return sa.subsetOf(&sb, a, b)
}

// filterShape is the precomputed containment-check data of one filter:
// sorted canonical edge keys and the covered target-column → lower-cased
// source mapping.
type filterShape struct {
	edgeKeys []string // sorted
	colSrc   map[int]string
}

func newFilterShape(f *Filter) filterShape {
	sh := filterShape{colSrc: make(map[int]string, len(f.TargetCols))}
	if len(f.Tree.Edges) > 0 {
		sh.edgeKeys = make([]string, len(f.Tree.Edges))
		for i, e := range f.Tree.Edges {
			sh.edgeKeys[i] = edgeKey(e)
		}
		slices.Sort(sh.edgeKeys)
	}
	for i, tc := range f.TargetCols {
		sh.colSrc[tc] = strings.ToLower(f.Sources[i].String())
	}
	return sh
}

// subsetOf reports whether filter a (with shape sa) is contained in b: a's
// tables, edges and covered column mapping are all subsets of b's.
func (sa *filterShape) subsetOf(sb *filterShape, a, b *Filter) bool {
	if a.Tree.Size() > b.Tree.Size() || len(a.TargetCols) > len(b.TargetCols) {
		return false
	}
	for _, t := range a.Tree.Tables {
		if !b.Tree.Contains(t) {
			return false
		}
	}
	// Sorted-merge subset test over the canonical edge keys.
	j := 0
	for _, ek := range sa.edgeKeys {
		for j < len(sb.edgeKeys) && sb.edgeKeys[j] < ek {
			j++
		}
		if j >= len(sb.edgeKeys) || sb.edgeKeys[j] != ek {
			return false
		}
	}
	for tc, src := range sa.colSrc {
		if sb.colSrc[tc] != src {
			return false
		}
	}
	return true
}

func edgeKey(e schema.ForeignKey) string {
	a, b := strings.ToLower(e.From.String()), strings.ToLower(e.To.String())
	if a > b {
		a, b = b, a
	}
	return a + "=" + b
}

// enumerateSubtrees lists every connected subtree of the candidate tree
// (including single tables and the full tree).
func enumerateSubtrees(t graphx.Tree) []graphx.Tree {
	seen := make(map[string]struct{})
	var out []graphx.Tree
	add := func(sub graphx.Tree) {
		key := sub.Canonical()
		if _, dup := seen[key]; dup {
			return
		}
		seen[key] = struct{}{}
		out = append(out, sub)
	}
	// Start from each table and grow along the candidate's own edges.
	var expand func(sub graphx.Tree)
	expand = func(sub graphx.Tree) {
		for _, table := range sub.Tables {
			for _, e := range t.Edges {
				var other string
				switch {
				case strings.EqualFold(e.From.Table, table):
					other = e.To.Table
				case strings.EqualFold(e.To.Table, table):
					other = e.From.Table
				default:
					continue
				}
				if sub.Contains(other) {
					continue
				}
				next := graphx.Tree{
					Tables: append(append([]string(nil), sub.Tables...), other),
					Edges:  append(append([]schema.ForeignKey(nil), sub.Edges...), e),
				}
				key := next.Canonical()
				if _, dup := seen[key]; dup {
					continue
				}
				add(next)
				expand(next)
			}
		}
	}
	for _, table := range t.Tables {
		sub := graphx.Tree{Tables: []string{table}}
		add(sub)
		expand(sub)
	}
	return out
}

// ValidationResult reports one filter validation.
type ValidationResult struct {
	Passed bool
	Cost   exec.ExecStats
}

// Validator executes filter validations against an execution backend for a
// given constraint specification.
type Validator struct {
	// DB is the execution backend probed by validations: any exec.Executor
	// (the in-memory reference engine or the columnar engine).
	DB   exec.Executor
	Spec *constraint.Spec
	// MaxIntermediate guards runaway joins during validation (0 = default).
	MaxIntermediate int

	// tmpls caches, per sample × target column, the pushed-down predicate
	// derived from the cell (Eval closure, normalised keyword cover,
	// numeric bounds). One scheduling run validates hundreds of filters
	// against the same handful of cells; without the cache every
	// validation re-derived the cover and re-normalised the keywords.
	tmplOnce sync.Once
	tmpls    [][]predTemplate
}

// predTemplate is the reusable pushed-down form of one constrained cell.
type predTemplate struct {
	pred     func(value.Value) bool
	keywords []string
	bounds   *exec.NumericBounds
	exact    bool // bounds characterise pred exactly (lang.ExactRangeBounds)
	ok       bool // cell present and non-nil
}

// templates builds the per-cell predicate templates once; safe for
// concurrent use (validations run on a worker pool).
func (v *Validator) templates() [][]predTemplate {
	v.tmplOnce.Do(func() {
		samples := v.Spec.Samples
		v.tmpls = make([][]predTemplate, len(samples))
		for si, sample := range samples {
			row := make([]predTemplate, len(sample.Cells))
			for ci, expr := range sample.Cells {
				if expr == nil {
					continue
				}
				t := predTemplate{pred: expr.Eval, ok: true}
				if kws, ok := lang.EqualityKeywords(expr); ok {
					// Normalise once: keyword-index lookups are
					// case-insensitive anyway, and pre-lowered keywords keep
					// the executor's per-probe path allocation-free.
					for i, kw := range kws {
						kws[i] = strings.ToLower(strings.TrimSpace(kw))
					}
					t.keywords = kws
				}
				// Range/ordering shapes additionally carry a numeric
				// interval cover, which zone-mapped executors compare
				// against column min/max to skip scans outright.
				if b, ok := lang.NumericBounds(expr); ok {
					t.bounds = &exec.NumericBounds{Lo: b.Lo, Hi: b.Hi, HasLo: b.HasLo, HasHi: b.HasHi}
					// A pure numeric range is characterised, not merely
					// covered, by its interval: executors answer it with two
					// float comparisons instead of a closure call per row.
					_, t.exact = lang.ExactRangeBounds(expr)
				}
				row[ci] = t
			}
			v.tmpls[si] = row
		}
	})
	return v.tmpls
}

// Validate executes the filter without cancellation; it is shorthand for
// ValidateContext with a background context.
func (v *Validator) Validate(f *Filter) (ValidationResult, error) {
	return v.ValidateContext(context.Background(), f)
}

// ValidateContext executes the filter: for every sample constraint there
// must be a result tuple of the filter's plan matching the sample's cells
// restricted to the covered target columns. Samples with no constrained
// covered cells still require the sub-join to be non-empty.
//
// Cancelling ctx aborts the validation mid-execution (between samples and
// inside the row-processing loops of the in-memory executor) and returns
// ctx.Err().
func (v *Validator) ValidateContext(ctx context.Context, f *Filter) (ValidationResult, error) {
	plan := f.Plan()
	var total exec.ExecStats
	tmpls := v.templates()
	samples := v.Spec.Samples
	if len(samples) == 0 {
		samples = []constraint.SampleConstraint{{Cells: make([]lang.ValueExpr, v.Spec.NumColumns)}}
	}
	for si, sample := range samples {
		if err := ctx.Err(); err != nil {
			return ValidationResult{Cost: total}, err
		}
		opts := exec.ExecOptions{
			MaxIntermediate: v.MaxIntermediate,
			Interrupt:       func() bool { return ctx.Err() != nil },
		}
		// Push single-column predicates down to base scans, from the
		// per-cell templates: equality-shaped cells carry their keyword
		// cover (point lookups on indexed executors), range shapes their
		// numeric bounds (zone-map pruning).
		var row []predTemplate
		if si < len(tmpls) {
			row = tmpls[si]
		}
		for i, tc := range f.TargetCols {
			if tc >= len(row) || !row[tc].ok {
				continue
			}
			t := &row[tc]
			opts.ColumnPredicates = append(opts.ColumnPredicates, exec.ColumnPredicate{
				Ref:         f.Sources[i],
				Pred:        t.pred,
				Keywords:    t.keywords,
				Bounds:      t.bounds,
				BoundsExact: t.exact,
			})
		}
		// The pushed-down predicates already enforce every covered cell, but
		// keep a tuple predicate as a defence in depth for shared source
		// columns (two target columns projecting the same source column).
		cols := f.TargetCols
		opts.TuplePredicate = func(t value.Tuple) bool {
			return sample.MatchesProjection(cols, t)
		}
		ok, stats, err := v.DB.Exists(plan, opts)
		total.Add(stats)
		if err != nil {
			if errors.Is(err, exec.ErrInterrupted) && ctx.Err() != nil {
				return ValidationResult{Cost: total}, ctx.Err()
			}
			return ValidationResult{Cost: total}, fmt.Errorf("filter: validating %s: %w", f, err)
		}
		if !ok {
			return ValidationResult{Passed: false, Cost: total}, nil
		}
	}
	return ValidationResult{Passed: true, Cost: total}, nil
}

// ValidateBatchContext validates several filters sharing one plan
// fingerprint with a single ExistsBatch call: one PredicateSet per
// filter × sample, answered by the backend in (at best) one shared
// scan/join pipeline. passed[i] reports what ValidateContext would report
// for fs[i]; the returned stats cover the whole batch (the per-filter
// attribution of shared work is the caller's policy). Filters with
// different plan fingerprints are an error — the caller groups before
// batching.
//
// Cancelling ctx aborts the batch mid-execution and returns ctx.Err(); no
// partial verdicts are reported.
func (v *Validator) ValidateBatchContext(ctx context.Context, fs []*Filter) ([]bool, exec.ExecStats, error) {
	if len(fs) == 0 {
		return nil, exec.ExecStats{}, nil
	}
	plan := fs[0].Plan()
	fp := fs[0].PlanFingerprint()
	for _, f := range fs[1:] {
		if f.PlanFingerprint() != fp {
			return nil, exec.ExecStats{}, fmt.Errorf("filter: batch mixes plans (%s vs %s)", fs[0], f)
		}
	}
	tmpls := v.templates()
	samples := v.Spec.Samples
	if len(samples) == 0 {
		samples = []constraint.SampleConstraint{{Cells: make([]lang.ValueExpr, v.Spec.NumColumns)}}
	}
	sets := make([]exec.PredicateSet, 0, len(fs)*len(samples))
	for _, f := range fs {
		for si := range samples {
			var set exec.PredicateSet
			var row []predTemplate
			if si < len(tmpls) {
				row = tmpls[si]
			}
			for i, tc := range f.TargetCols {
				if tc >= len(row) || !row[tc].ok {
					continue
				}
				t := &row[tc]
				set.ColumnPredicates = append(set.ColumnPredicates, exec.ColumnPredicate{
					Ref:         f.Sources[i],
					Pred:        t.pred,
					Keywords:    t.keywords,
					Bounds:      t.bounds,
					BoundsExact: t.exact,
				})
			}
			cols := f.TargetCols
			sample := samples[si]
			set.TuplePredicate = func(t value.Tuple) bool {
				return sample.MatchesProjection(cols, t)
			}
			sets = append(sets, set)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, exec.ExecStats{}, err
	}
	verdicts, stats, err := v.DB.ExistsBatch(plan, sets, exec.ExecOptions{
		MaxIntermediate: v.MaxIntermediate,
		Interrupt:       func() bool { return ctx.Err() != nil },
	})
	if err != nil {
		if errors.Is(err, exec.ErrInterrupted) && ctx.Err() != nil {
			return nil, stats, ctx.Err()
		}
		return nil, stats, fmt.Errorf("filter: batch-validating %d filters over plan %s: %w", len(fs), fp, err)
	}
	passed := make([]bool, len(fs))
	k := 0
	for fi := range fs {
		ok := true
		for range samples {
			if !verdicts[k].Satisfied {
				ok = false
			}
			k++
		}
		passed[fi] = ok
	}
	return passed, stats, nil
}

// CandidateStatus is the resolution state of a candidate during scheduling.
type CandidateStatus uint8

const (
	// CandidateUnresolved means the candidate is neither confirmed nor
	// pruned yet.
	CandidateUnresolved CandidateStatus = iota
	// CandidateConfirmed means its top filter passed: the candidate is a
	// final schema mapping query.
	CandidateConfirmed
	// CandidatePruned means one of its filters failed.
	CandidatePruned
)

// String names the status.
func (s CandidateStatus) String() string {
	switch s {
	case CandidateUnresolved:
		return "unresolved"
	case CandidateConfirmed:
		return "confirmed"
	case CandidatePruned:
		return "pruned"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Session tracks validation outcomes, propagates implications through the
// filter dependency DAG, and resolves candidates.
type Session struct {
	Set      *Set
	Outcomes []Outcome
	Status   []CandidateStatus

	// Executed counts filter validations actually run (the paper's metric).
	Executed int
	// Implied counts outcomes derived through propagation instead of
	// execution.
	Implied int
	// Cached counts outcomes served from a cross-round outcome cache —
	// validations an interactive session skipped entirely.
	Cached int
	// Cost accumulates execution statistics of the validations run.
	Cost exec.ExecStats
}

// NewSession creates a fresh session over a filter set.
func NewSession(set *Set) *Session {
	return &Session{
		Set:      set,
		Outcomes: make([]Outcome, set.NumFilters()),
		Status:   make([]CandidateStatus, set.NumCandidates()),
	}
}

// Determined reports whether filter i already has a known outcome.
func (s *Session) Determined(i int) bool { return s.Outcomes[i] != Unknown }

// Resolved reports whether candidate c is confirmed or pruned.
func (s *Session) Resolved(c int) bool { return s.Status[c] != CandidateUnresolved }

// UnresolvedCandidates returns the number of candidates still unresolved.
func (s *Session) UnresolvedCandidates() int {
	n := 0
	for _, st := range s.Status {
		if st == CandidateUnresolved {
			n++
		}
	}
	return n
}

// PruningReach returns the number of currently unresolved candidates that
// contain filter i — the immediate pruning power of a failure of i.
func (s *Session) PruningReach(i int) int {
	n := 0
	for _, ci := range s.Set.CandidatesOf(i) {
		if !s.Resolved(ci) {
			n++
		}
	}
	return n
}

// RecordExecution applies the result of directly validating filter i.
func (s *Session) RecordExecution(i int, res ValidationResult) {
	s.Executed++
	s.Cost.Add(res.Cost)
	if res.Passed {
		s.apply(i, Passed)
	} else {
		s.apply(i, Failed)
	}
}

// RecordCached applies an outcome served from a cross-round outcome cache:
// the filter is resolved (with full implication propagation) without
// counting as an executed validation, because no executor work happened.
func (s *Session) RecordCached(i int, passed bool) {
	s.Cached++
	if passed {
		s.apply(i, Passed)
	} else {
		s.apply(i, Failed)
	}
}

// apply sets the outcome of filter i and propagates implications.
func (s *Session) apply(i int, o Outcome) {
	if s.Outcomes[i] == o {
		return
	}
	if s.Outcomes[i] != Unknown {
		// Conflicting information indicates a bug in propagation or the
		// validator; keep the first outcome.
		return
	}
	s.Outcomes[i] = o
	switch o {
	case Failed:
		// Every super-filter fails too.
		for _, p := range s.Set.Parents(i) {
			if s.Outcomes[p] == Unknown {
				s.Implied++
				s.apply(p, Failed)
			}
		}
		// Every candidate containing the filter is pruned.
		for _, ci := range s.Set.CandidatesOf(i) {
			if s.Status[ci] == CandidateUnresolved {
				s.Status[ci] = CandidatePruned
			}
		}
	case Passed:
		// Every sub-filter passes too.
		for _, c := range s.Set.Children(i) {
			if s.Outcomes[c] == Unknown {
				s.Implied++
				s.apply(c, Passed)
			}
		}
		// Candidates whose top filter passed are confirmed.
		for _, ci := range s.Set.CandidatesOf(i) {
			if s.Status[ci] == CandidateUnresolved && s.Set.Top[ci] == i {
				s.Status[ci] = CandidateConfirmed
			}
		}
	}
}

// Confirmed returns the indexes of confirmed candidates.
func (s *Session) Confirmed() []int {
	var out []int
	for ci, st := range s.Status {
		if st == CandidateConfirmed {
			out = append(out, ci)
		}
	}
	return out
}

// Pruned returns the indexes of pruned candidates.
func (s *Session) Pruned() []int {
	var out []int
	for ci, st := range s.Status {
		if st == CandidatePruned {
			out = append(out, ci)
		}
	}
	return out
}
