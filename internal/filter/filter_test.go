package filter

import (
	"strings"
	"testing"

	"prism/internal/constraint"
	"prism/internal/graphx"
	"prism/internal/mem"
	"prism/internal/schema"
	"prism/internal/value"
)

// fixture builds the mini Mondial database, the §3 spec, and the enumerated
// candidates for it.
type fixture struct {
	db         *mem.Database
	spec       *constraint.Spec
	graph      *graphx.Graph
	candidates []graphx.Candidate
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	s := schema.New()
	add := func(tab *schema.Table) {
		if err := s.AddTable(tab); err != nil {
			t.Fatal(err)
		}
	}
	add(schema.MustTable("Lake",
		schema.Column{Name: "Name", Type: value.Text},
		schema.Column{Name: "Area", Type: value.Decimal},
	))
	add(schema.MustTable("geo_lake",
		schema.Column{Name: "Lake", Type: value.Text},
		schema.Column{Name: "Province", Type: value.Text},
	))
	add(schema.MustTable("Province",
		schema.Column{Name: "Name", Type: value.Text},
		schema.Column{Name: "Country", Type: value.Text},
	))
	fk := func(ft, fc, tt, tc string) {
		if err := s.AddForeignKey(schema.ForeignKey{
			From: schema.ColumnRef{Table: ft, Column: fc},
			To:   schema.ColumnRef{Table: tt, Column: tc},
		}); err != nil {
			t.Fatal(err)
		}
	}
	fk("geo_lake", "Lake", "Lake", "Name")
	fk("geo_lake", "Province", "Province", "Name")

	db := mem.NewDatabase("filter-test", s)
	data := []struct {
		table string
		cells []string
	}{
		{"Lake", []string{"Lake Tahoe", "497"}},
		{"Lake", []string{"Crater Lake", "53.2"}},
		{"Lake", []string{"Fort Peck Lake", "981"}},
		{"geo_lake", []string{"Lake Tahoe", "California"}},
		{"geo_lake", []string{"Lake Tahoe", "Nevada"}},
		{"geo_lake", []string{"Crater Lake", "Oregon"}},
		{"geo_lake", []string{"Fort Peck Lake", "Florida"}},
		{"Province", []string{"California", "United States"}},
		{"Province", []string{"Nevada", "United States"}},
		{"Province", []string{"Oregon", "United States"}},
		{"Province", []string{"Florida", "United States"}},
	}
	for _, r := range data {
		if err := db.InsertStrings(r.table, r.cells...); err != nil {
			t.Fatal(err)
		}
	}
	db.Analyze()

	spec, err := constraint.ParseGrid(3,
		[][]string{{"California || Nevada", "Lake Tahoe", ""}},
		[]string{"", "", "DataType=='decimal' AND MinValue>='0'"},
	)
	if err != nil {
		t.Fatal(err)
	}

	g := graphx.New(s)
	related := [][]schema.ColumnRef{
		{{Table: "geo_lake", Column: "Province"}, {Table: "Province", Column: "Name"}},
		{{Table: "Lake", Column: "Name"}, {Table: "geo_lake", Column: "Lake"}},
		{{Table: "Lake", Column: "Area"}},
	}
	cands, err := graphx.Enumerate(g, related, graphx.EnumerateOptions{MaxTables: 3, RequireUsefulLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates enumerated")
	}
	return &fixture{db: db, spec: spec, graph: g, candidates: cands}
}

func TestDecomposeStructure(t *testing.T) {
	fx := newFixture(t)
	set := Decompose(fx.candidates)
	if set.NumCandidates() != len(fx.candidates) {
		t.Fatalf("NumCandidates = %d", set.NumCandidates())
	}
	if set.NumFilters() == 0 {
		t.Fatal("no filters")
	}
	// Every candidate has a top filter covering all target columns.
	for ci, cand := range set.Candidates {
		top := set.Filters[set.Top[ci]]
		if !top.IsTopOf(cand) {
			t.Errorf("candidate %d: top filter %s does not cover candidate %s", ci, top, cand)
		}
		if len(set.CandidateFilters[ci]) == 0 {
			t.Errorf("candidate %d has no filters", ci)
		}
		// Each of its filters must be a sub-filter of the top filter.
		for _, fi := range set.CandidateFilters[ci] {
			if fi == set.Top[ci] {
				continue
			}
			if !isSubFilter(set.Filters[fi], top) {
				t.Errorf("candidate %d: %s is not a sub-filter of its top %s", ci, set.Filters[fi], top)
			}
		}
	}
	// Filters are shared: with more than one candidate there should be fewer
	// filters than the sum of per-candidate filter counts.
	sum := 0
	for _, fs := range set.CandidateFilters {
		sum += len(fs)
	}
	if len(fx.candidates) > 1 && set.NumFilters() >= sum {
		t.Errorf("filters do not appear to be shared: %d distinct vs %d total", set.NumFilters(), sum)
	}
	// Dependency relation is symmetric between parents and children.
	for i := range set.Filters {
		for _, p := range set.Parents(i) {
			found := false
			for _, c := range set.Children(p) {
				if c == i {
					found = true
				}
			}
			if !found {
				t.Errorf("parent/child asymmetry between %d and %d", i, p)
			}
		}
	}
}

func TestFilterPlanAndString(t *testing.T) {
	fx := newFixture(t)
	set := Decompose(fx.candidates)
	for _, f := range set.Filters {
		plan := f.Plan()
		if err := plan.Validate(fx.db.Schema()); err != nil {
			t.Errorf("filter %s plan invalid: %v", f, err)
		}
		if len(plan.Project) != len(f.TargetCols) {
			t.Errorf("filter %s projection mismatch", f)
		}
		if f.JoinPathLength() != len(f.Tree.Edges) {
			t.Errorf("JoinPathLength mismatch for %s", f)
		}
		if !strings.HasPrefix(f.String(), "filter[") {
			t.Errorf("String = %q", f.String())
		}
	}
}

func TestValidateSingleTableFilters(t *testing.T) {
	fx := newFixture(t)
	set := Decompose(fx.candidates)
	v := &Validator{DB: fx.db, Spec: fx.spec}

	// Find a single-table filter over Lake binding target column 1 (the
	// "Lake Tahoe" cell) to Lake.Name; it must validate.
	var nameFilter *Filter
	for _, f := range set.Filters {
		if f.Tree.Size() != 1 || !f.Tree.Contains("Lake") {
			continue
		}
		for i, tc := range f.TargetCols {
			if tc == 1 && f.Sources[i].String() == "Lake.Name" {
				nameFilter = f
			}
		}
	}
	if nameFilter == nil {
		t.Fatal("expected a single-table Lake filter covering the lake-name cell")
	}
	res, err := v.Validate(nameFilter)
	if err != nil || !res.Passed {
		t.Errorf("Lake.Name filter should pass: %+v %v", res, err)
	}
	if res.Cost.RowsScanned == 0 {
		t.Error("validation should report scanned rows")
	}
	// A filter covering only the unconstrained area cell passes trivially.
	areaFilter := &Filter{
		Key:        "area",
		Tree:       graphx.Tree{Tables: []string{"Lake"}},
		TargetCols: []int{2},
		Sources:    []schema.ColumnRef{{Table: "Lake", Column: "Area"}},
	}
	res, err = v.Validate(areaFilter)
	if err != nil || !res.Passed {
		t.Errorf("Lake.Area filter (unconstrained cell) should pass: %+v %v", res, err)
	}
}

func TestValidateFailingFilter(t *testing.T) {
	fx := newFixture(t)
	set := Decompose(fx.candidates)
	v := &Validator{DB: fx.db, Spec: fx.spec}
	// The filter binding target column 1 (California || Nevada) to
	// Province.Name trivially passes; the one binding target column 2
	// (Lake Tahoe) to geo_lake.Province must fail.
	var wrongBinding *Filter
	for _, f := range set.Filters {
		if f.Tree.Size() == 1 && len(f.TargetCols) == 1 &&
			f.TargetCols[0] == 1 && f.Sources[0].String() == "geo_lake.Lake" {
			// geo_lake.Lake does contain "Lake Tahoe", so that passes; look
			// instead for column 0 bound to Lake.Name-like columns.
			continue
		}
	}
	// Construct a filter directly: target column 0 (California || Nevada)
	// bound to Lake.Name — no lake is named California or Nevada.
	wrongBinding = &Filter{
		Key:        "manual",
		Tree:       graphx.Tree{Tables: []string{"Lake"}},
		TargetCols: []int{0},
		Sources:    []schema.ColumnRef{{Table: "Lake", Column: "Name"}},
	}
	res, err := v.Validate(wrongBinding)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Error("binding the province constraint to Lake.Name must fail")
	}
}

func TestValidateFullCandidates(t *testing.T) {
	fx := newFixture(t)
	set := Decompose(fx.candidates)
	v := &Validator{DB: fx.db, Spec: fx.spec}
	confirmed := 0
	desiredConfirmed := false
	for ci, cand := range set.Candidates {
		top := set.Filters[set.Top[ci]]
		res, err := v.Validate(top)
		if err != nil {
			t.Fatalf("validate top of candidate %d: %v", ci, err)
		}
		if res.Passed {
			confirmed++
			p := cand.Projection
			if p[0].String() == "geo_lake.Province" && p[1].String() == "Lake.Name" && p[2].String() == "Lake.Area" && cand.Tree.Size() == 2 {
				desiredConfirmed = true
			}
		}
	}
	if confirmed == 0 {
		t.Error("at least the paper's desired mapping should validate")
	}
	if !desiredConfirmed {
		t.Error("the paper's desired mapping (geo_lake.Province, Lake.Name, Lake.Area) must validate")
	}
}

func TestValidateMultipleSamples(t *testing.T) {
	fx := newFixture(t)
	spec, err := constraint.ParseGrid(2,
		[][]string{
			{"California || Nevada", "Lake Tahoe"},
			{"Oregon", "Crater Lake"},
		},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	v := &Validator{DB: fx.db, Spec: spec}
	good := &Filter{
		Key:        "good",
		Tree:       graphx.Tree{Tables: []string{"Lake", "geo_lake"}, Edges: []schema.ForeignKey{fx.db.Schema().ForeignKeys()[0]}},
		TargetCols: []int{0, 1},
		Sources: []schema.ColumnRef{
			{Table: "geo_lake", Column: "Province"},
			{Table: "Lake", Column: "Name"},
		},
	}
	res, err := v.Validate(good)
	if err != nil || !res.Passed {
		t.Errorf("both samples should be satisfiable: %+v %v", res, err)
	}
	// Now add a sample that cannot be satisfied.
	spec2, err := constraint.ParseGrid(2,
		[][]string{
			{"California", "Lake Tahoe"},
			{"Texas", "Lake Tahoe"},
		},
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	v2 := &Validator{DB: fx.db, Spec: spec2}
	res, err = v2.Validate(good)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Error("a sample naming Texas must fail on this database")
	}
}

func TestValidateErrorPropagation(t *testing.T) {
	fx := newFixture(t)
	v := &Validator{DB: fx.db, Spec: fx.spec}
	bad := &Filter{
		Key:        "bad",
		Tree:       graphx.Tree{Tables: []string{"NoSuchTable"}},
		TargetCols: []int{0},
		Sources:    []schema.ColumnRef{{Table: "NoSuchTable", Column: "X"}},
	}
	if _, err := v.Validate(bad); err == nil {
		t.Error("validating a filter over an unknown table should fail")
	}
}

func TestSessionPropagation(t *testing.T) {
	fx := newFixture(t)
	set := Decompose(fx.candidates)
	sess := NewSession(set)
	if sess.UnresolvedCandidates() != set.NumCandidates() {
		t.Fatal("all candidates start unresolved")
	}

	// Failing a shared single-table filter must prune every candidate that
	// contains it and imply failure of its parents.
	var sharedIdx int = -1
	best := -1
	for i := range set.Filters {
		if n := len(set.CandidatesOf(i)); n > best && set.Filters[i].Tree.Size() == 1 {
			best = n
			sharedIdx = i
		}
	}
	if sharedIdx < 0 {
		t.Fatal("no single-table filter found")
	}
	reachBefore := sess.PruningReach(sharedIdx)
	if reachBefore != best {
		t.Errorf("PruningReach = %d, want %d", reachBefore, best)
	}
	sess.RecordExecution(sharedIdx, ValidationResult{Passed: false})
	if sess.Executed != 1 {
		t.Errorf("Executed = %d", sess.Executed)
	}
	if sess.Outcomes[sharedIdx] != Failed {
		t.Error("filter should be failed")
	}
	for _, p := range set.Parents(sharedIdx) {
		if sess.Outcomes[p] != Failed {
			t.Errorf("parent %d should be implied failed", p)
		}
	}
	prunedCount := len(sess.Pruned())
	if prunedCount != best {
		t.Errorf("pruned %d candidates, want %d", prunedCount, best)
	}
	if sess.Implied == 0 {
		t.Error("implication counter should have increased")
	}

	// Passing a top filter confirms its candidate and implies its children.
	var unresolvedCand int = -1
	for ci := range set.Candidates {
		if !sess.Resolved(ci) {
			unresolvedCand = ci
			break
		}
	}
	if unresolvedCand < 0 {
		t.Skip("all candidates already resolved by the shared failure")
	}
	top := set.Top[unresolvedCand]
	sess.RecordExecution(top, ValidationResult{Passed: true})
	if sess.Status[unresolvedCand] != CandidateConfirmed {
		t.Error("candidate should be confirmed after its top filter passes")
	}
	for _, c := range set.Children(top) {
		if sess.Outcomes[c] == Unknown {
			t.Error("children of a passing filter should be implied passed")
		}
	}
	if got := len(sess.Confirmed()); got != 1 {
		t.Errorf("Confirmed = %d", got)
	}
	// Re-applying a determined outcome is a no-op.
	before := sess.Implied
	sess.apply(top, Failed)
	if sess.Outcomes[top] != Passed || sess.Implied != before {
		t.Error("conflicting re-application should be ignored")
	}
}

func TestSessionDeterminedAndStatusStrings(t *testing.T) {
	fx := newFixture(t)
	set := Decompose(fx.candidates)
	sess := NewSession(set)
	if sess.Determined(0) {
		t.Error("filters start undetermined")
	}
	sess.RecordExecution(0, ValidationResult{Passed: true})
	if !sess.Determined(0) {
		t.Error("filter 0 should be determined")
	}
	for _, o := range []Outcome{Unknown, Passed, Failed, Outcome(9)} {
		if o.String() == "" {
			t.Error("outcome string empty")
		}
	}
	for _, s := range []CandidateStatus{CandidateUnresolved, CandidateConfirmed, CandidatePruned, CandidateStatus(9)} {
		if s.String() == "" {
			t.Error("status string empty")
		}
	}
}

func TestValidateEmptySampleSpec(t *testing.T) {
	fx := newFixture(t)
	spec, err := constraint.ParseGrid(1, nil, []string{"DataType == 'decimal'"})
	if err != nil {
		t.Fatal(err)
	}
	v := &Validator{DB: fx.db, Spec: spec}
	f := &Filter{
		Key:        "area-only",
		Tree:       graphx.Tree{Tables: []string{"Lake"}},
		TargetCols: []int{0},
		Sources:    []schema.ColumnRef{{Table: "Lake", Column: "Area"}},
	}
	res, err := v.Validate(f)
	if err != nil || !res.Passed {
		t.Errorf("metadata-only spec: non-empty projection should pass, got %+v %v", res, err)
	}
}

func BenchmarkDecompose(b *testing.B) {
	fx := newFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Decompose(fx.candidates)
	}
}

func BenchmarkValidateTopFilter(b *testing.B) {
	fx := newFixture(b)
	set := Decompose(fx.candidates)
	v := &Validator{DB: fx.db, Spec: fx.spec}
	top := set.Filters[set.Top[0]]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Validate(top); err != nil {
			b.Fatal(err)
		}
	}
}
