package prism

// The property-based equivalence fuzzer: random multiresolution constraint
// specifications over every bundled data set must produce identical results
// on every path through the system —
//
//	mem executor ≡ columnar executor ≡ session round ≡ warm session round
//
// comparing the mapping SQL set and order, the result previews, and the
// validation schedule (executor-independent by design). The deterministic
// seed corpus lives in testdata/fuzz/FuzzEquivalence and runs on every
// plain `go test`; `go test -fuzz FuzzEquivalence .` explores beyond it.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"prism/api"
)

// fuzzVocab is what the generator can put into constraint cells, per data
// set: keywords that exist in the synthetic data, keywords that do not
// (exercising failing filters and infeasible columns), and a numeric range.
type fuzzVocab struct {
	name     string
	keywords []string
	lo, hi   int
}

var fuzzVocabs = []fuzzVocab{
	{
		name: "mondial",
		keywords: []string{
			"California", "Nevada", "Lake Tahoe", "Crater Lake", "Oregon",
			"United States", "Atlantis",
		},
		lo: 0, hi: 60000,
	},
	{
		name: "imdb",
		keywords: []string{
			"Inception", "Leonardo DiCaprio", "Tim Robbins", "Drama",
			"The Nonexistent Movie",
		},
		lo: 0, hi: 10,
	},
	{
		name: "nba",
		keywords: []string{
			"Los Angeles", "Lakers", "Boston", "Celtics", "Narnia Knights",
		},
		lo: 0, hi: 200,
	},
}

var fuzzMetadata = []string{
	"",
	"DataType=='text'",
	"DataType=='decimal'",
	"DataType=='int' AND MinValue>='0'",
	"MinValue>='0'",
}

// fuzzEngines builds one reduced-scale engine per bundled data set, once
// per process (fuzz workers are processes; seed-corpus runs share one).
var fuzzEngines = sync.OnceValue(func() map[string]*Engine {
	out := make(map[string]*Engine, 3)
	for _, v := range fuzzVocabs {
		var opts []OpenOption
		if v.name == "mondial" {
			opts = append(opts, WithMondialConfig(tinyMondial()))
		}
		eng, err := Open(v.name, opts...)
		if err != nil {
			panic(fmt.Sprintf("building fuzz engine %s: %v", v.name, err))
		}
		out[v.name] = eng
	}
	return out
})

// fuzzSnapshotEngines round-trips every fuzz engine through the snapshot
// codec once per process: the snapshot-loaded twin must behave
// byte-identically to its freshly built original on every specification.
var fuzzSnapshotEngines = sync.OnceValue(func() map[string]*Engine {
	out := make(map[string]*Engine, 3)
	for name, eng := range fuzzEngines() {
		var buf bytes.Buffer
		if err := eng.Snapshot(&buf); err != nil {
			panic(fmt.Sprintf("snapshotting fuzz engine %s: %v", name, err))
		}
		loaded, err := ReadSnapshot(&buf)
		if err != nil {
			panic(fmt.Sprintf("loading fuzz snapshot %s: %v", name, err))
		}
		out[name] = loaded
	}
	return out
})

// splitmix64 is the generator's deterministic randomness: the same fuzz
// input always produces the same specification.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) intn(n int) int { return int(s.next() % uint64(n)) }

// fuzzSpec derives a random-but-deterministic constraint grid.
func fuzzSpec(v fuzzVocab, cols int, rowSeed, cellSeed uint64) (samples [][]string, metadata []string) {
	rng := splitmix64(rowSeed*0x9e3779b9 + cellSeed)
	numRows := 1 + rng.intn(2)
	cell := func() string {
		switch rng.intn(6) {
		case 0, 1: // empty (missing values are the common case in the demo)
			return ""
		case 2:
			return v.keywords[rng.intn(len(v.keywords))]
		case 3:
			a := v.keywords[rng.intn(len(v.keywords))]
			b := v.keywords[rng.intn(len(v.keywords))]
			return a + " || " + b
		case 4:
			lo := v.lo + rng.intn(v.hi-v.lo)
			hi := lo + 1 + rng.intn(v.hi-lo)
			return fmt.Sprintf("[%d, %d]", lo, hi)
		default:
			return fmt.Sprintf(">= %d", v.lo+rng.intn(v.hi-v.lo))
		}
	}
	constrained := false
	for r := 0; r < numRows; r++ {
		row := make([]string, cols)
		for c := range row {
			row[c] = cell()
			if row[c] != "" {
				constrained = true
			}
		}
		samples = append(samples, row)
	}
	if rng.intn(2) == 0 {
		metadata = make([]string, cols)
		for c := range metadata {
			metadata[c] = fuzzMetadata[rng.intn(len(fuzzMetadata))]
			if metadata[c] != "" {
				constrained = true
			}
		}
	}
	if !constrained {
		samples[0][0] = v.keywords[0]
	}
	return samples, metadata
}

// fuzzDigest reduces a report to the facts every execution path must agree
// on: the search space, the validation schedule, and the final mappings
// with their SQL order and preview rows.
func fuzzDigest(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "candidates=%d filters=%d validations=%d implied=%d confirmed=%d pruned=%d\n",
		r.CandidatesEnumerated, r.FiltersGenerated, r.Validations, r.Implied,
		r.CandidatesConfirmed, r.CandidatesPruned)
	fmt.Fprint(&b, mappingsDigest(r))
	return b.String()
}

// mappingsDigest covers only the user-visible outcome (SQL order plus
// previews) — what cached rounds must reproduce even though their
// validation counters legitimately differ.
func mappingsDigest(r *Report) string {
	var b strings.Builder
	for _, m := range r.Mappings {
		fmt.Fprintf(&b, "mapping %s\n", m.SQL)
		if m.Result != nil {
			for _, row := range m.Result.Rows {
				fmt.Fprintf(&b, "  row %s\n", row.Key())
			}
		}
	}
	return b.String()
}

func FuzzEquivalence(f *testing.F) {
	// Hand-picked seeds: per data set, one high-resolution case, one with
	// ranges/disjunctions, one leaning on unknown keywords (failing
	// filters), plus cross-dataset variety. The corpus files in
	// testdata/fuzz/FuzzEquivalence extend these.
	f.Add(byte(0), byte(3), uint64(1), uint64(1))
	f.Add(byte(0), byte(2), uint64(7), uint64(13))
	f.Add(byte(1), byte(3), uint64(2), uint64(5))
	f.Add(byte(1), byte(2), uint64(11), uint64(3))
	f.Add(byte(2), byte(3), uint64(4), uint64(9))
	f.Add(byte(2), byte(4), uint64(6), uint64(17))
	f.Add(byte(0), byte(4), uint64(21), uint64(42))

	f.Fuzz(func(t *testing.T, dataset, cols byte, rowSeed, cellSeed uint64) {
		v := fuzzVocabs[int(dataset)%len(fuzzVocabs)]
		numCols := 2 + int(cols)%3 // 2..4 target columns
		samples, metadata := fuzzSpec(v, numCols, rowSeed, cellSeed)
		spec, err := ParseConstraints(numCols, samples, metadata)
		if err != nil {
			t.Skip("generated an unparsable grid")
		}

		// Wire-codec property: every parsable specification must survive
		// the structured JSON encoding (prism/api) byte-identically — the
		// v1 API's structured-spec requests hinge on this.
		encoded, err := api.EncodeSpec(spec)
		if err != nil {
			t.Fatalf("EncodeSpec failed on a parsed spec: %v\nspec:\n%s", err, spec)
		}
		payload, err := json.Marshal(encoded)
		if err != nil {
			t.Fatalf("marshalling encoded spec: %v", err)
		}
		var wire api.Spec
		if err := json.Unmarshal(payload, &wire); err != nil {
			t.Fatalf("unmarshalling encoded spec: %v", err)
		}
		decoded, err := wire.Decode()
		if err != nil {
			t.Fatalf("decoding round-tripped spec: %v\nwire: %s", err, payload)
		}
		if decoded.String() != spec.String() {
			t.Fatalf("spec JSON round trip diverges:\noriginal:\n%s\ndecoded:\n%s\nwire: %s",
				spec, decoded, payload)
		}

		eng := fuzzEngines()[v.name]
		opts := Options{
			Parallelism:    1,
			MaxTables:      3,
			MaxCandidates:  200,
			IncludeResults: true,
			ResultLimit:    5,
		}

		ctx := context.Background()
		memOpts := opts
		memOpts.Executor = "mem"
		memReport, memErr := eng.Discover(ctx, spec, memOpts)
		colOpts := opts
		colOpts.Executor = "columnar"
		colReport, colErr := eng.Discover(ctx, spec, colOpts)

		// Both executors must agree on whether the round succeeds (errors
		// here are spec-shaped: infeasible columns, no connecting
		// candidates — never executor-specific).
		if (memErr == nil) != (colErr == nil) {
			t.Fatalf("executors disagree on the error:\nmem: %v\ncolumnar: %v\nspec:\n%s",
				memErr, colErr, spec)
		}

		// A session must agree too: cold round populates the cache, warm
		// round answers from it.
		sess := eng.NewSession(ctx)
		defer sess.Close()
		coldReport, coldErr := sess.Discover(ctx, spec, opts)
		if (memErr == nil) != (coldErr == nil) {
			t.Fatalf("session round disagrees on the error:\nmem: %v\nsession: %v\nspec:\n%s",
				memErr, coldErr, spec)
		}
		if memErr != nil {
			return
		}

		want := fuzzDigest(memReport)
		if got := fuzzDigest(colReport); got != want {
			t.Fatalf("columnar diverges from mem:\nspec:\n%s--- mem ---\n%s--- columnar ---\n%s",
				spec, want, got)
		}
		// The cold session round runs the default executor with a cache;
		// its full digest (including the validation schedule) must match.
		if got := fuzzDigest(coldReport); got != want {
			t.Fatalf("cold session round diverges from mem:\nspec:\n%s--- mem ---\n%s--- session ---\n%s",
				spec, want, got)
		}
		warmReport, warmErr := sess.Discover(ctx, spec, opts)
		if warmErr != nil {
			t.Fatalf("warm session round failed where cold succeeded: %v", warmErr)
		}
		if warmReport.Validations != 0 {
			t.Fatalf("warm identical round executed %d validations, want 0\nspec:\n%s",
				warmReport.Validations, spec)
		}
		if coldReport.FiltersGenerated > 0 && warmReport.Cache.Hits == 0 {
			t.Fatalf("warm round reported no cache hits over %d filters", coldReport.FiltersGenerated)
		}
		if got := mappingsDigest(warmReport); got != mappingsDigest(memReport) {
			t.Fatalf("warm cached round diverges:\nspec:\n%s--- mem ---\n%s--- warm ---\n%s",
				spec, mappingsDigest(memReport), got)
		}

		// Batched-scheduler arm: grouping probes by plan fingerprint and
		// answering each group with one shared scan (exec.ExistsBatch) must
		// leave the candidate partition and the mapping set untouched. The
		// validation counter legitimately differs — a batch may execute a
		// group-mate that sequential scheduling would have resolved by
		// implication — so the comparison is the resolution outcome, not the
		// schedule length.
		batchOpts := opts
		batchOpts.Executor = "columnar"
		batchOpts.BatchValidation = true
		batchReport, batchErr := eng.Discover(ctx, spec, batchOpts)
		if batchErr != nil {
			t.Fatalf("batched round failed where sequential succeeded: %v\nspec:\n%s", batchErr, spec)
		}
		if batchReport.CandidatesConfirmed != memReport.CandidatesConfirmed ||
			batchReport.CandidatesPruned != memReport.CandidatesPruned {
			t.Fatalf("batched round resolves differently: confirmed %d/pruned %d, mem %d/%d\nspec:\n%s",
				batchReport.CandidatesConfirmed, batchReport.CandidatesPruned,
				memReport.CandidatesConfirmed, memReport.CandidatesPruned, spec)
		}
		if got := mappingsDigest(batchReport); got != mappingsDigest(memReport) {
			t.Fatalf("batched round diverges from mem:\nspec:\n%s--- mem ---\n%s--- batched ---\n%s",
				spec, mappingsDigest(memReport), got)
		}

		// Snapshot arm: an engine cold-started from a snapshot of the same
		// database must be indistinguishable — identical mapping SQL set and
		// order, previews, and the full validation schedule.
		snapEng := fuzzSnapshotEngines()[v.name]
		snapReport, snapErr := snapEng.Discover(ctx, spec, memOpts)
		if snapErr != nil {
			t.Fatalf("snapshot-loaded round failed where fresh succeeded: %v\nspec:\n%s", snapErr, spec)
		}
		if got := fuzzDigest(snapReport); got != want {
			t.Fatalf("snapshot-loaded engine diverges from fresh:\nspec:\n%s--- fresh ---\n%s--- snapshot ---\n%s",
				spec, want, got)
		}
	})
}
