package prism

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// tinyMondial keeps session tests fast.
func tinyMondial() MondialConfig {
	return MondialConfig{
		Seed: 11, Countries: 4, ProvincesPerCountry: 3, CitiesPerProvince: 2,
		Lakes: 30, Rivers: 15, Mountains: 10,
	}
}

func sessionEngine(t testing.TB) *Engine {
	t.Helper()
	eng, err := Open("mondial", WithMondialConfig(tinyMondial()))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func sessionSpec(t testing.TB) *Spec {
	t.Helper()
	spec, err := ParseConstraints(3,
		[][]string{{"California || Nevada", "Lake Tahoe", ""}},
		[]string{"", "", "DataType=='decimal' AND MinValue>='0'"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func sqlSet(r *Report) []string {
	out := make([]string, 0, len(r.Mappings))
	for _, m := range r.Mappings {
		out = append(out, m.SQL)
	}
	return out
}

func TestSessionRefineLoop(t *testing.T) {
	eng := sessionEngine(t)
	sess := eng.NewSession(context.Background())
	defer sess.Close()

	opts := Options{Parallelism: 1, IncludeResults: true, ResultLimit: 5}
	cold, err := sess.Discover(context.Background(), sessionSpec(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Mappings) == 0 || cold.Validations == 0 {
		t.Fatalf("cold round too weak: %s", cold.Summary())
	}

	// Refine: constrain the Area column, then relax it again. Both rounds
	// must reuse the text-column outcomes; the relaxation round returns to
	// the original constraints and should validate nothing at all.
	warm, err := sess.Refine(context.Background(),
		Delta{UpdateCells: []CellUpdate{{Row: 0, Col: 2, Cell: "[400, 600]"}}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Hits == 0 || warm.Validations >= cold.Validations {
		t.Errorf("refined round: validations=%d (cold %d), cache=%+v — expected reuse",
			warm.Validations, cold.Validations, warm.Cache)
	}
	back, err := sess.Refine(context.Background(),
		Delta{UpdateCells: []CellUpdate{{Row: 0, Col: 2, Cell: ""}}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if back.Validations != 0 {
		t.Errorf("returning to known constraints executed %d validations, want 0", back.Validations)
	}
	coldSQL, backSQL := sqlSet(cold), sqlSet(back)
	if len(coldSQL) != len(backSQL) {
		t.Fatalf("mapping sets differ: %v vs %v", coldSQL, backSQL)
	}
	for i := range coldSQL {
		if coldSQL[i] != backSQL[i] {
			t.Fatalf("mapping %d differs: %q vs %q", i, coldSQL[i], backSQL[i])
		}
	}
	if sess.Rounds() != 3 {
		t.Errorf("Rounds() = %d, want 3", sess.Rounds())
	}
	if st := sess.CacheStats(); st.Hits == 0 || st.Stores == 0 {
		t.Errorf("lifetime cache stats = %+v", st)
	}
}

func TestSessionClosesWithContext(t *testing.T) {
	eng := sessionEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	sess := eng.NewSession(ctx)
	if _, err := sess.Discover(context.Background(), sessionSpec(t), Options{}); err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := sess.Discover(context.Background(), sessionSpec(t), Options{}); err != nil {
			break // the watcher closed the session
		}
		if time.Now().After(deadline) {
			t.Fatal("session did not close after its context was cancelled")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWithSessionCacheCapacity(t *testing.T) {
	eng, err := Open("mondial", WithMondialConfig(tinyMondial()), WithSessionCacheCapacity(7))
	if err != nil {
		t.Fatal(err)
	}
	sess := eng.NewSession(context.Background())
	defer sess.Close()
	if got := sess.CacheStats().Capacity; got != 7 {
		t.Errorf("session cache capacity = %d, want 7", got)
	}
}

// TestRegistryConcurrentOpenAndSessionRounds is the registry/session
// concurrency gate: N goroutines Get the same engine name while M run
// session rounds. The engine must be built exactly once (the registry's
// singleflight), and session caches must not cross-talk — a fresh session
// starts cold no matter how warm every other session already is.
func TestRegistryConcurrentOpenAndSessionRounds(t *testing.T) {
	reg := NewRegistry()
	var builds atomic.Int32
	reg.RegisterOpener("shared", func() (*Engine, error) {
		builds.Add(1)
		return Open("mondial", WithMondialConfig(tinyMondial()))
	})

	const getters, sessions = 16, 4
	opts := Options{Parallelism: 1}
	var wg sync.WaitGroup
	engines := make([]*Engine, getters)
	for g := 0; g < getters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			eng, err := reg.Get("shared")
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			engines[g] = eng
		}(g)
	}
	warmHits := make([]CacheCounters, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			eng, err := reg.Get("shared")
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			sess := eng.NewSession(context.Background())
			defer sess.Close()
			cold, err := sess.Discover(context.Background(), sessionSpec(t), opts)
			if err != nil {
				t.Errorf("session %d cold round: %v", s, err)
				return
			}
			// Each session warms only itself: its cold round must not see
			// hits from the other sessions' rounds.
			if cold.Cache.Hits != 0 {
				t.Errorf("session %d cold round had %d hits — cache cross-talk between sessions", s, cold.Cache.Hits)
			}
			warm, err := sess.Discover(context.Background(), sessionSpec(t), opts)
			if err != nil {
				t.Errorf("session %d warm round: %v", s, err)
				return
			}
			warmHits[s] = warm.Cache
		}(s)
	}
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Errorf("engine built %d times, want exactly 1", n)
	}
	for g := 1; g < getters; g++ {
		if engines[g] != engines[0] {
			t.Fatalf("getter %d received a different engine instance", g)
		}
	}
	for s, c := range warmHits {
		if c.Hits == 0 {
			t.Errorf("session %d warm round had no hits: %+v", s, c)
		}
	}
}
